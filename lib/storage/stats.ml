type t = {
  mutable page_reads : int;
  mutable page_writes : int;
  mutable buffer_hits : int;
  mutable pages_allocated : int;
  mutable objects_read : int;
  mutable objects_written : int;
  mutable wal_appends : int;
  mutable wal_bytes : int;
  mutable recovery_replays : int;
  mutable txn_commits : int;
  mutable txn_aborts : int;
  mutable lock_waits : int;
  mutable deadlocks : int;
  mutable undo_applied : int;
  mutable checksum_failures : int;
  mutable scrub_pages : int;
  mutable repairs : int;
  mutable degraded_reads : int;
  mutable read_retries : int;
  mutable failed_reads : int;
  mutable prefetch_issued : int;
  mutable prefetch_hits : int;
  mutable wal_flushes : int;
  mutable frames_shipped : int;
  mutable frames_applied : int;
  mutable acks_waited : int;
  mutable replica_lag_bytes : int;
  mutable maint_steps : int;
  mutable maint_pages_walked : int;
  mutable maint_lock_yields : int;
  mutable maint_backfill_pending : int;
  mutable peer_deaths : int;
  mutable ack_demotions : int;
  mutable heartbeats_missed : int;
  mutable failovers : int;
  mutable reconnects : int;
  by_file : (int, int * int) Hashtbl.t;
}

let create () =
  {
    page_reads = 0;
    page_writes = 0;
    buffer_hits = 0;
    pages_allocated = 0;
    objects_read = 0;
    objects_written = 0;
    wal_appends = 0;
    wal_bytes = 0;
    recovery_replays = 0;
    txn_commits = 0;
    txn_aborts = 0;
    lock_waits = 0;
    deadlocks = 0;
    undo_applied = 0;
    checksum_failures = 0;
    scrub_pages = 0;
    repairs = 0;
    degraded_reads = 0;
    read_retries = 0;
    failed_reads = 0;
    prefetch_issued = 0;
    prefetch_hits = 0;
    wal_flushes = 0;
    frames_shipped = 0;
    frames_applied = 0;
    acks_waited = 0;
    replica_lag_bytes = 0;
    maint_steps = 0;
    maint_pages_walked = 0;
    maint_lock_yields = 0;
    maint_backfill_pending = 0;
    peer_deaths = 0;
    ack_demotions = 0;
    heartbeats_missed = 0;
    failovers = 0;
    reconnects = 0;
    by_file = Hashtbl.create 16;
  }

let reset t =
  t.page_reads <- 0;
  t.page_writes <- 0;
  t.buffer_hits <- 0;
  t.pages_allocated <- 0;
  t.objects_read <- 0;
  t.objects_written <- 0;
  t.wal_appends <- 0;
  t.wal_bytes <- 0;
  t.recovery_replays <- 0;
  t.txn_commits <- 0;
  t.txn_aborts <- 0;
  t.lock_waits <- 0;
  t.deadlocks <- 0;
  t.undo_applied <- 0;
  t.checksum_failures <- 0;
  t.scrub_pages <- 0;
  t.repairs <- 0;
  t.degraded_reads <- 0;
  t.read_retries <- 0;
  t.failed_reads <- 0;
  t.prefetch_issued <- 0;
  t.prefetch_hits <- 0;
  t.wal_flushes <- 0;
  t.frames_shipped <- 0;
  t.frames_applied <- 0;
  t.acks_waited <- 0;
  t.replica_lag_bytes <- 0;
  t.maint_steps <- 0;
  t.maint_pages_walked <- 0;
  t.maint_lock_yields <- 0;
  t.maint_backfill_pending <- 0;
  t.peer_deaths <- 0;
  t.ack_demotions <- 0;
  t.heartbeats_missed <- 0;
  t.failovers <- 0;
  t.reconnects <- 0;
  Hashtbl.reset t.by_file

(* The one blessed mutation point for the counter fields.  Every increment
   in the tree goes through [add] (rule C1 bans bare [s.f <- s.f + n]
   outside this module), so moving the counters to [Atomic] fetch-and-add
   later is a change to this single match, not to every call site. *)
type counter =
  | Page_reads
  | Page_writes
  | Buffer_hits
  | Pages_allocated
  | Objects_read
  | Objects_written
  | Wal_appends
  | Wal_bytes
  | Recovery_replays
  | Txn_commits
  | Txn_aborts
  | Lock_waits
  | Deadlocks
  | Undo_applied
  | Checksum_failures
  | Scrub_pages
  | Repairs
  | Degraded_reads
  | Read_retries
  | Failed_reads
  | Prefetch_issued
  | Prefetch_hits
  | Wal_flushes
  | Frames_shipped
  | Frames_applied
  | Acks_waited
  | Maint_steps
  | Maint_pages_walked
  | Maint_lock_yields
  | Peer_deaths
  | Ack_demotions
  | Heartbeats_missed
  | Failovers
  | Reconnects

let add t c n =
  match c with
  | Page_reads -> t.page_reads <- t.page_reads + n
  | Page_writes -> t.page_writes <- t.page_writes + n
  | Buffer_hits -> t.buffer_hits <- t.buffer_hits + n
  | Pages_allocated -> t.pages_allocated <- t.pages_allocated + n
  | Objects_read -> t.objects_read <- t.objects_read + n
  | Objects_written -> t.objects_written <- t.objects_written + n
  | Wal_appends -> t.wal_appends <- t.wal_appends + n
  | Wal_bytes -> t.wal_bytes <- t.wal_bytes + n
  | Recovery_replays -> t.recovery_replays <- t.recovery_replays + n
  | Txn_commits -> t.txn_commits <- t.txn_commits + n
  | Txn_aborts -> t.txn_aborts <- t.txn_aborts + n
  | Lock_waits -> t.lock_waits <- t.lock_waits + n
  | Deadlocks -> t.deadlocks <- t.deadlocks + n
  | Undo_applied -> t.undo_applied <- t.undo_applied + n
  | Checksum_failures -> t.checksum_failures <- t.checksum_failures + n
  | Scrub_pages -> t.scrub_pages <- t.scrub_pages + n
  | Repairs -> t.repairs <- t.repairs + n
  | Degraded_reads -> t.degraded_reads <- t.degraded_reads + n
  | Read_retries -> t.read_retries <- t.read_retries + n
  | Failed_reads -> t.failed_reads <- t.failed_reads + n
  | Prefetch_issued -> t.prefetch_issued <- t.prefetch_issued + n
  | Prefetch_hits -> t.prefetch_hits <- t.prefetch_hits + n
  | Wal_flushes -> t.wal_flushes <- t.wal_flushes + n
  | Frames_shipped -> t.frames_shipped <- t.frames_shipped + n
  | Frames_applied -> t.frames_applied <- t.frames_applied + n
  | Acks_waited -> t.acks_waited <- t.acks_waited + n
  | Maint_steps -> t.maint_steps <- t.maint_steps + n
  | Maint_pages_walked -> t.maint_pages_walked <- t.maint_pages_walked + n
  | Maint_lock_yields -> t.maint_lock_yields <- t.maint_lock_yields + n
  | Peer_deaths -> t.peer_deaths <- t.peer_deaths + n
  | Ack_demotions -> t.ack_demotions <- t.ack_demotions + n
  | Heartbeats_missed -> t.heartbeats_missed <- t.heartbeats_missed + n
  | Failovers -> t.failovers <- t.failovers + n
  | Reconnects -> t.reconnects <- t.reconnects + n

let bump t c = add t c 1

(* Process-wide physical I/O, across every Stats block ever created.  Never
   reset: callers take deltas.  Lets the benchmark driver attribute total
   I/O to a scenario even when the scenario builds several databases. *)
let grand_io = ref 0

let grand_total_io () = !grand_io

(* Same idea for the robustness counters: process-wide monotonic totals so
   the bench driver can report per-scenario deltas even when a scenario
   builds several databases (each with its own Stats block). *)
let g_checksum_failures = ref 0
let g_scrub_pages = ref 0
let g_repairs = ref 0
let g_degraded_reads = ref 0
let g_read_retries = ref 0

let grand_robustness () =
  (!g_checksum_failures, !g_scrub_pages, !g_repairs, !g_degraded_reads, !g_read_retries)

let note_checksum_failure t =
  add t Checksum_failures 1;
  incr g_checksum_failures

let note_scrub_page t =
  add t Scrub_pages 1;
  incr g_scrub_pages

let note_repair t =
  add t Repairs 1;
  incr g_repairs

let note_degraded_read t =
  add t Degraded_reads 1;
  incr g_degraded_reads

let note_read_retry t =
  add t Read_retries 1;
  incr g_read_retries

let note_failed_read t = add t Failed_reads 1
let note_prefetch_issued t = add t Prefetch_issued 1
let note_prefetch_hit t = add t Prefetch_hits 1

(* Process-wide WAL totals, like [grand_io]: the bench driver reports
   per-scenario append/flush deltas even when a scenario builds several
   databases (each with its own Stats block and log handle). *)
let g_wal_appends = ref 0
let g_wal_flushes = ref 0
let grand_wal () = (!g_wal_appends, !g_wal_flushes)

let note_wal_append t ~bytes =
  add t Wal_appends 1;
  add t Wal_bytes bytes;
  incr g_wal_appends

let note_wal_flush t =
  add t Wal_flushes 1;
  incr g_wal_flushes

(* Process-wide replication-shipping totals, same pattern as [grand_wal]:
   the bench driver reports per-scenario deltas even when a scenario builds
   a master and several replicas (each with its own Stats block). *)
let g_frames_shipped = ref 0
let g_frames_applied = ref 0
let g_acks_waited = ref 0
let grand_repl () = (!g_frames_shipped, !g_frames_applied, !g_acks_waited)

let note_frame_shipped t =
  add t Frames_shipped 1;
  incr g_frames_shipped

let note_frame_applied t =
  add t Frames_applied 1;
  incr g_frames_applied

let note_ack_waited t =
  add t Acks_waited 1;
  incr g_acks_waited

let set_replica_lag t ~bytes = t.replica_lag_bytes <- bytes

(* Process-wide background-maintenance totals, same pattern as [grand_wal]:
   the bench driver reports per-scenario deltas even when a scenario builds
   several databases. *)
let g_maint_steps = ref 0
let g_maint_yields = ref 0
let grand_maint () = (!g_maint_steps, !g_maint_yields)

let note_maint_step t ~pages =
  add t Maint_steps 1;
  add t Maint_pages_walked pages;
  incr g_maint_steps

let note_maint_yield t =
  add t Maint_lock_yields 1;
  incr g_maint_yields

let set_maint_backlog t ~pages = t.maint_backfill_pending <- pages

(* Process-wide failover/liveness totals, same pattern as [grand_repl]: the
   bench driver reports per-scenario deltas even when a scenario builds a
   whole cluster (each node with its own Stats block). *)
let g_peer_deaths = ref 0
let g_ack_demotions = ref 0
let g_heartbeats_missed = ref 0
let g_failovers = ref 0
let g_reconnects = ref 0

let grand_failover () =
  (!g_peer_deaths, !g_ack_demotions, !g_heartbeats_missed, !g_failovers, !g_reconnects)

let note_peer_death t =
  add t Peer_deaths 1;
  incr g_peer_deaths

let note_ack_demotion t =
  add t Ack_demotions 1;
  incr g_ack_demotions

let note_heartbeat_missed t =
  add t Heartbeats_missed 1;
  incr g_heartbeats_missed

let note_failover t =
  add t Failovers 1;
  incr g_failovers

let note_reconnect t =
  add t Reconnects 1;
  incr g_reconnects

let record_read t ~file =
  incr grand_io;
  let r, w = Option.value ~default:(0, 0) (Hashtbl.find_opt t.by_file file) in
  Hashtbl.replace t.by_file file (r + 1, w)

let record_write t ~file =
  incr grand_io;
  let r, w = Option.value ~default:(0, 0) (Hashtbl.find_opt t.by_file file) in
  Hashtbl.replace t.by_file file (r, w + 1)

let file_io t ~file = Option.value ~default:(0, 0) (Hashtbl.find_opt t.by_file file)

let copy t =
  {
    page_reads = t.page_reads;
    page_writes = t.page_writes;
    buffer_hits = t.buffer_hits;
    pages_allocated = t.pages_allocated;
    objects_read = t.objects_read;
    objects_written = t.objects_written;
    wal_appends = t.wal_appends;
    wal_bytes = t.wal_bytes;
    recovery_replays = t.recovery_replays;
    txn_commits = t.txn_commits;
    txn_aborts = t.txn_aborts;
    lock_waits = t.lock_waits;
    deadlocks = t.deadlocks;
    undo_applied = t.undo_applied;
    checksum_failures = t.checksum_failures;
    scrub_pages = t.scrub_pages;
    repairs = t.repairs;
    degraded_reads = t.degraded_reads;
    read_retries = t.read_retries;
    failed_reads = t.failed_reads;
    prefetch_issued = t.prefetch_issued;
    prefetch_hits = t.prefetch_hits;
    wal_flushes = t.wal_flushes;
    frames_shipped = t.frames_shipped;
    frames_applied = t.frames_applied;
    acks_waited = t.acks_waited;
    replica_lag_bytes = t.replica_lag_bytes;
    maint_steps = t.maint_steps;
    maint_pages_walked = t.maint_pages_walked;
    maint_lock_yields = t.maint_lock_yields;
    maint_backfill_pending = t.maint_backfill_pending;
    peer_deaths = t.peer_deaths;
    ack_demotions = t.ack_demotions;
    heartbeats_missed = t.heartbeats_missed;
    failovers = t.failovers;
    reconnects = t.reconnects;
    by_file = Hashtbl.copy t.by_file;
  }

let diff now before =
  let by_file = Hashtbl.copy now.by_file in
  Hashtbl.iter
    (fun file (r0, w0) ->
      let r1, w1 = Option.value ~default:(0, 0) (Hashtbl.find_opt by_file file) in
      Hashtbl.replace by_file file (r1 - r0, w1 - w0))
    before.by_file;
  {
    page_reads = now.page_reads - before.page_reads;
    page_writes = now.page_writes - before.page_writes;
    buffer_hits = now.buffer_hits - before.buffer_hits;
    pages_allocated = now.pages_allocated - before.pages_allocated;
    objects_read = now.objects_read - before.objects_read;
    objects_written = now.objects_written - before.objects_written;
    wal_appends = now.wal_appends - before.wal_appends;
    wal_bytes = now.wal_bytes - before.wal_bytes;
    recovery_replays = now.recovery_replays - before.recovery_replays;
    txn_commits = now.txn_commits - before.txn_commits;
    txn_aborts = now.txn_aborts - before.txn_aborts;
    lock_waits = now.lock_waits - before.lock_waits;
    deadlocks = now.deadlocks - before.deadlocks;
    undo_applied = now.undo_applied - before.undo_applied;
    checksum_failures = now.checksum_failures - before.checksum_failures;
    scrub_pages = now.scrub_pages - before.scrub_pages;
    repairs = now.repairs - before.repairs;
    degraded_reads = now.degraded_reads - before.degraded_reads;
    read_retries = now.read_retries - before.read_retries;
    failed_reads = now.failed_reads - before.failed_reads;
    prefetch_issued = now.prefetch_issued - before.prefetch_issued;
    prefetch_hits = now.prefetch_hits - before.prefetch_hits;
    wal_flushes = now.wal_flushes - before.wal_flushes;
    frames_shipped = now.frames_shipped - before.frames_shipped;
    frames_applied = now.frames_applied - before.frames_applied;
    acks_waited = now.acks_waited - before.acks_waited;
    maint_steps = now.maint_steps - before.maint_steps;
    maint_pages_walked = now.maint_pages_walked - before.maint_pages_walked;
    maint_lock_yields = now.maint_lock_yields - before.maint_lock_yields;
    peer_deaths = now.peer_deaths - before.peer_deaths;
    ack_demotions = now.ack_demotions - before.ack_demotions;
    heartbeats_missed = now.heartbeats_missed - before.heartbeats_missed;
    failovers = now.failovers - before.failovers;
    reconnects = now.reconnects - before.reconnects;
    (* gauges, not counters: report the current value, not a delta *)
    replica_lag_bytes = now.replica_lag_bytes;
    maint_backfill_pending = now.maint_backfill_pending;
    by_file;
  }

let total_io t = t.page_reads + t.page_writes

let pp fmt t =
  Format.fprintf fmt
    "reads=%d writes=%d hits=%d allocated=%d obj_read=%d obj_written=%d \
     wal_appends=%d wal_bytes=%d wal_flushes=%d replays=%d commits=%d \
     aborts=%d lock_waits=%d deadlocks=%d undone=%d checksum_failures=%d \
     scrub_pages=%d repairs=%d degraded_reads=%d read_retries=%d \
     failed_reads=%d prefetch_issued=%d prefetch_hits=%d frames_shipped=%d \
     frames_applied=%d acks_waited=%d replica_lag_bytes=%d maint_steps=%d \
     maint_pages_walked=%d maint_lock_yields=%d maint_backfill_pending=%d \
     peer_deaths=%d ack_demotions=%d heartbeats_missed=%d failovers=%d \
     reconnects=%d"
    t.page_reads t.page_writes t.buffer_hits t.pages_allocated t.objects_read
    t.objects_written t.wal_appends t.wal_bytes t.wal_flushes
    t.recovery_replays t.txn_commits t.txn_aborts t.lock_waits t.deadlocks
    t.undo_applied t.checksum_failures t.scrub_pages t.repairs
    t.degraded_reads t.read_retries t.failed_reads t.prefetch_issued
    t.prefetch_hits t.frames_shipped t.frames_applied t.acks_waited
    t.replica_lag_bytes t.maint_steps t.maint_pages_walked
    t.maint_lock_yields t.maint_backfill_pending t.peer_deaths
    t.ack_demotions t.heartbeats_missed t.failovers t.reconnects
