(** The disk: fixed-size pages behind a pluggable storage backend.

    Files are arrays of fixed-size pages.  Where the pages physically live
    is a {!backend_kind} decision: [Mem] keeps them in growable in-memory
    arrays (free, deterministic — the substrate for unit tests and for
    benchmarks that measure I/O {e counts}), [File] stores each file as a
    real on-disk file written through [Unix] (the substrate for benchmarks
    that measure I/O {e time}).  Every [read_page]/[write_page] increments
    the shared {!Stats} counters — this is the "hardware" whose I/O the
    experiments measure.  All access goes through the buffer pool in
    normal operation.

    Each page carries an FNV-1a checksum trailer (stored out of band, like
    the spare bytes of a 520-byte sector, so the slotted-page layout and the
    cost model's page capacity are untouched; the file backend stores the
    trailer as 8 real bytes after each page slot).  [write_page] seals the
    page; [read_page] verifies it and raises {!Corrupt_page} instead of
    returning garbage. *)

type t

exception Crash of string
(** Raised by {!write_page} when an armed failpoint fires: the simulated
    machine lost power mid-workload.  Everything the buffer pool had not
    yet written back is gone; recovery must restart from the last
    checkpoint image and the write-ahead log. *)

exception Read_error of string
(** A {e transient} read fault (injected by {!set_read_failpoint}): the page
    itself is intact and retrying may succeed.  The buffer pool retries
    these a bounded number of times before giving up. *)

exception Corrupt_page of { file : int; page : int }
(** A {e permanent} read fault: the page failed checksum verification (or
    was already quarantined).  Retrying cannot help; the page needs repair
    (see [Scrub]) or the query must degrade to a path that avoids it. *)

type backend_kind =
  | Mem  (** in-memory page arrays (the default) *)
  | File of string option
      (** real files, one per fieldrep file, under the given directory —
          or under a fresh temp directory (removed at exit) for [None] *)

val backend_of_env : unit -> backend_kind
(** The backend selected by the [FIELDREP_BACKEND] environment variable
    (["mem"], ["file"], or unset for [Mem]) — the default for every
    {!create} that does not pass [?backend], so an existing test suite can
    be re-run against real files without touching a line of it.  Raises
    [Invalid_argument] on an unknown value. *)

val create : ?page_size:int -> ?backend:backend_kind -> Stats.t -> t
(** Default page size is 4096 bytes (EXODUS's page size; the cost model's
    [B = 4056] is this minus per-page bookkeeping).  [backend] defaults to
    {!backend_of_env}[ ()]. *)

val page_size : t -> int
val stats : t -> Stats.t

val backend_name : t -> string
(** ["mem"] or ["file"]. *)

val close : t -> unit
(** Release backend resources: a no-op for [Mem]; for [File], close the
    cached descriptors and remove an auto-created backing directory.
    Idempotent.  Auto-created directories of unclosed disks are removed
    at process exit regardless. *)

val create_file : t -> int
(** Returns a fresh file id. *)

val delete_file : t -> int -> unit
val file_exists : t -> int -> bool

val page_count : t -> int -> int
(** Number of pages in a file.  Raises
    [Invalid_argument "Disk.page_count: unknown file N"] for unknown
    files (every entry point names itself the same way — no bare
    [Not_found] escapes the storage layer). *)

val allocate_page : t -> int -> int
(** [allocate_page t file] appends a zeroed page and returns its page number.
    Counted in [pages_allocated], not as a read or write. *)

val read_page : t -> file:int -> page:int -> Bytes.t -> unit
(** Copy a page into the caller's buffer (one physical read).  Verifies the
    page checksum first: on mismatch the page is quarantined,
    [checksum_failures] is bumped, and {!Corrupt_page} is raised — the
    caller's buffer is left untouched. *)

val write_page : t -> file:int -> page:int -> Bytes.t -> unit
(** Copy the caller's buffer onto the page (one physical write), recompute
    its checksum, and lift any quarantine — rewriting a page with fresh
    content is how repair heals it. *)

val total_pages : t -> int
(** Pages across all files (for space-overhead reporting). *)

val file_ids : t -> int list

val next_file_id : t -> int
(** The id {!create_file} would hand out next.  Checkpoint images record it
    so that replayed DDL allocates the same file ids as the original run
    even when deleted files left holes in the id space. *)

val reserve_file_ids : t -> int -> unit
(** [reserve_file_ids t n] bumps the file-id allocator to at least [n]. *)

(** {1 Quarantine}

    Pages that failed verification.  Reads of a quarantined page raise
    {!Corrupt_page} without touching the bytes; a {!write_page} of fresh
    content clears the entry. *)

val quarantine : t -> file:int -> page:int -> unit
val quarantined : t -> file:int -> page:int -> bool
val clear_quarantine : t -> file:int -> page:int -> unit

val quarantined_pages : t -> (int * int) list
(** Sorted [(file, page)] list of currently quarantined pages. *)

(** {1 Fault injection}

    Crash-recovery tests arm a write failpoint, run a workload, and catch
    {!Crash} — proving that a crash between any two physical writes is
    recoverable.  Corruption tests flip stored bytes with {!corrupt_page} /
    {!tear_page} and exercise detection, scrubbing, and repair.  Read
    failpoints inject transient faults for the retry path.  The machinery
    is backend-independent: against real files a torn write is a partial
    [write] of the first half of the page that never reaches the trailer. *)

val set_failpoint : ?torn:bool -> ?count:int -> t -> after_writes:int -> unit
(** Let [after_writes] more physical writes succeed, then raise {!Crash}.
    With [torn:true] the first half of the crashing write lands on the page
    (but not its checksum) before the exception — a half-written page that
    the next read detects.  [count] (default 1) is how many consecutive
    write attempts fire before the failpoint disarms itself; pass a large
    count for a persistent fault that needs no re-arming. *)

val clear_failpoint : t -> unit

val writes_until_crash : t -> int option
(** Remaining successful writes before the armed failpoint fires, if any. *)

val set_read_failpoint : ?count:int -> ?every:int -> t -> after_reads:int -> unit
(** Let [after_reads] more physical reads succeed, then raise {!Read_error}
    on subsequent reads: [count] (default 1) faults in total, one every
    [every]-th attempt (default 1, i.e. back-to-back; larger values give an
    intermittent fault).  Disarms after the last fault fires. *)

val clear_read_failpoint : t -> unit

val corrupt_page : t -> file:int -> page:int -> int list -> unit
(** Bit-rot: XOR [0xff] into the stored page at each byte offset, leaving
    the stored checksum stale so the next verified read fails.  Not counted
    as I/O. *)

val tear_page : t -> file:int -> page:int -> unit
(** Zero the second half of the stored page without updating its checksum —
    the on-disk aftermath of a torn write. *)

val verify_page : t -> file:int -> page:int -> bool
(** Does the stored page match its checksum?  No counters, no quarantine —
    pure inspection (scrub and tests use the counted {!read_page} path). *)

(** {1 Image support}

    Raw access used by database save/load; bypasses the I/O counters. *)

val dump_page : t -> file:int -> page:int -> Bytes.t
(** Copy of the raw page, not counted as a read and not verified. *)

val restore_file : t -> id:int -> Bytes.t array -> unit
(** (Re)create a file with exactly these pages, not counted as writes.
    Page checksums are recomputed from the restored bytes.  Also bumps the
    internal file-id allocator past [id]. *)
