(* 32-bit FNV-1a.  One hash for the whole store: WAL frames and page
   trailers use the same function, so a checksum mismatch means the bytes
   changed, not that two subsystems disagree about hashing. *)

let fnv1a32 bytes off len =
  let h = ref 0x811c9dc5 in
  for i = off to off + len - 1 do
    h := (!h lxor Char.code (Bytes.get bytes i)) * 0x01000193 land 0xffffffff
  done;
  !h
