(** I/O accounting.

    The paper's entire evaluation is in units of page I/Os, so the storage
    layer counts every physical page read and write.  Buffer-pool hits are
    tracked separately: a hit is a logical access that costs no I/O. *)

type t = {
  mutable page_reads : int;  (** physical page reads from disk *)
  mutable page_writes : int;  (** physical page writes to disk *)
  mutable buffer_hits : int;  (** logical accesses served from the pool *)
  mutable pages_allocated : int;
  mutable objects_read : int;
  mutable objects_written : int;
  mutable wal_appends : int;  (** records appended to the write-ahead log *)
  mutable wal_bytes : int;  (** bytes written to the write-ahead log *)
  mutable recovery_replays : int;  (** log records redone by [Db.recover] *)
  mutable txn_commits : int;  (** transactions committed *)
  mutable txn_aborts : int;  (** transactions rolled back (any reason) *)
  mutable lock_waits : int;  (** lock requests that blocked *)
  mutable deadlocks : int;  (** wait-for cycles broken by aborting a victim *)
  mutable undo_applied : int;  (** before-images restored by abort/recovery *)
  mutable checksum_failures : int;
      (** physical reads rejected because the page checksum did not match *)
  mutable scrub_pages : int;  (** pages verified by {!Scrub} sweeps *)
  mutable repairs : int;  (** replicated values / link objects rebuilt *)
  mutable degraded_reads : int;
      (** queries that fell back to the functional join because a replica
          page was quarantined *)
  mutable read_retries : int;
      (** physical reads retried after a transient fault *)
  mutable failed_reads : int;
      (** buffer-pool installs whose physical read failed after retries;
          the victim frame is kept, so [buffer_hits + page_reads +
          failed_reads] accounts for every lookup *)
  mutable prefetch_issued : int;
      (** pages read ahead of demand by the sequential prefetcher *)
  mutable prefetch_hits : int;
      (** lookups served by a frame the prefetcher loaded *)
  mutable wal_flushes : int;
      (** physical flushes of the write-ahead log (group commit batches
          many appends per flush) *)
  mutable frames_shipped : int;
      (** log frames shipped to replication peers by a master *)
  mutable frames_applied : int;
      (** log frames applied through the redo path by a replica *)
  mutable acks_waited : int;
      (** ack-mode commit barriers: syncs that blocked on replica acks *)
  mutable replica_lag_bytes : int;
      (** gauge (not a counter): bytes buffered for the slowest async
          replication peer at the last update *)
  mutable maint_steps : int;
      (** background-maintenance quanta executed (lib/maint) *)
  mutable maint_pages_walked : int;
      (** heap pages processed by maintenance cursors *)
  mutable maint_lock_yields : int;
      (** maintenance quanta that released their locks and backed off
          because a foreground transaction held a conflicting lock *)
  mutable maint_backfill_pending : int;
      (** gauge (not a counter): heap pages the queued maintenance jobs
          have still to walk, at the last update *)
  mutable peer_deaths : int;
      (** replication peers declared Dead: heartbeat deadline missed or
          transport disconnected *)
  mutable ack_demotions : int;
      (** ack-mode commits that proceeded without a replica because its ack
          deadline expired (the peer is demoted to async) *)
  mutable heartbeats_missed : int;
      (** heartbeat deadlines missed by a peer (each miss moves the peer
          one step along Live -> Suspect -> Dead) *)
  mutable failovers : int;
      (** replica promotions to master (epoch bumps) *)
  mutable reconnects : int;
      (** transport reconnect attempts made by the backoff dialer *)
  by_file : (int, int * int) Hashtbl.t;
      (** per-file (reads, writes) attribution, keyed by disk file id *)
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t

(** One constructor per counter field of {!t}.  The two gauges
    ([replica_lag_bytes], [maint_backfill_pending]) are deliberately
    absent: they are set, not accumulated — use {!set_replica_lag} and
    {!set_maint_backlog}. *)
type counter =
  | Page_reads
  | Page_writes
  | Buffer_hits
  | Pages_allocated
  | Objects_read
  | Objects_written
  | Wal_appends
  | Wal_bytes
  | Recovery_replays
  | Txn_commits
  | Txn_aborts
  | Lock_waits
  | Deadlocks
  | Undo_applied
  | Checksum_failures
  | Scrub_pages
  | Repairs
  | Degraded_reads
  | Read_retries
  | Failed_reads
  | Prefetch_issued
  | Prefetch_hits
  | Wal_flushes
  | Frames_shipped
  | Frames_applied
  | Acks_waited
  | Maint_steps
  | Maint_pages_walked
  | Maint_lock_yields
  | Peer_deaths
  | Ack_demotions
  | Heartbeats_missed
  | Failovers
  | Reconnects

val add : t -> counter -> int -> unit
(** [add t c n] adds [n] to counter [c].  This is the only place in the
    tree that mutates a counter field (enforced by lint rule C1), so the
    representation can later move to [Atomic] fetch-and-add without
    touching call sites.  Note the [note_*] helpers below also maintain
    process-wide totals; prefer them where one exists. *)

val bump : t -> counter -> unit
(** [bump t c] is [add t c 1]. *)

val diff : t -> t -> t
(** [diff now before] is the per-counter difference. *)

val total_io : t -> int
(** [page_reads + page_writes] — the quantity the paper's C functions
    estimate. *)

val record_read : t -> file:int -> unit
val record_write : t -> file:int -> unit

val file_io : t -> file:int -> int * int
(** (reads, writes) charged to one file since the last reset. *)

val grand_total_io : unit -> int
(** Process-wide physical page I/O across every stats block ever created.
    Monotonic (never reset); callers take before/after deltas.  Lets the
    benchmark driver attribute I/O to a scenario that builds several
    databases. *)

val grand_robustness : unit -> int * int * int * int * int
(** Process-wide monotonic totals of [(checksum_failures, scrub_pages,
    repairs, degraded_reads, read_retries)] across every stats block ever
    created; callers take before/after deltas, like {!grand_total_io}. *)

(** Incrementers for the robustness counters.  They bump both the per-block
    field and the process-wide total, so use these rather than assigning the
    fields directly. *)

val note_checksum_failure : t -> unit
val note_scrub_page : t -> unit
val note_repair : t -> unit
val note_degraded_read : t -> unit
val note_read_retry : t -> unit
val note_failed_read : t -> unit
val note_prefetch_issued : t -> unit
val note_prefetch_hit : t -> unit

val grand_wal : unit -> int * int
(** Process-wide monotonic [(wal_appends, wal_flushes)] across every stats
    block; callers take before/after deltas, like {!grand_total_io}. *)

val note_wal_append : t -> bytes:int -> unit
(** Count one appended log record of [bytes] framed bytes (bumps the
    per-block and process-wide counters). *)

val note_wal_flush : t -> unit
(** Count one physical flush of the log. *)

val grand_repl : unit -> int * int * int
(** Process-wide monotonic [(frames_shipped, frames_applied, acks_waited)]
    across every stats block; callers take before/after deltas, like
    {!grand_total_io}. *)

val note_frame_shipped : t -> unit
val note_frame_applied : t -> unit
val note_ack_waited : t -> unit

val set_replica_lag : t -> bytes:int -> unit
(** Set the replication-lag gauge: bytes buffered for the slowest async
    peer.  A gauge, so {!diff} reports the current value, not a delta. *)

val grand_maint : unit -> int * int
(** Process-wide monotonic [(maint_steps, maint_lock_yields)] across every
    stats block; callers take before/after deltas, like {!grand_total_io}. *)

val note_maint_step : t -> pages:int -> unit
(** Count one executed maintenance quantum that walked [pages] heap pages
    (bumps the per-block and process-wide counters). *)

val note_maint_yield : t -> unit
(** Count one maintenance quantum that yielded to foreground locks. *)

val set_maint_backlog : t -> pages:int -> unit
(** Set the maintenance-backlog gauge: heap pages still to walk across all
    queued jobs.  A gauge, so {!diff} reports the current value. *)

val grand_failover : unit -> int * int * int * int * int
(** Process-wide monotonic [(peer_deaths, ack_demotions, heartbeats_missed,
    failovers, reconnects)] across every stats block; callers take
    before/after deltas, like {!grand_total_io}. *)

(** Incrementers for the failover/liveness counters (per-block plus
    process-wide, like the robustness counters). *)

val note_peer_death : t -> unit
val note_ack_demotion : t -> unit
val note_heartbeat_missed : t -> unit
val note_failover : t -> unit
val note_reconnect : t -> unit

val pp : Format.formatter -> t -> unit
