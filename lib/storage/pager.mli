(** Storage-manager facade: one disk, one buffer pool, one stats block.

    Heap files and B+-trees are built against this interface only, so tests
    can substitute pool sizes freely and experiments read a single stats
    block. *)

type t

type backend = Disk.backend_kind = Mem | File of string option
(** Re-exported so layers above the storage facade can pick a backend
    without referencing [Disk] (whose raw I/O surface is private to
    [lib/storage]). *)

val create :
  ?page_size:int -> ?frames:int -> ?prefetch:int -> ?backend:backend -> unit -> t
(** Defaults: 4096-byte pages, 256 frames, no read-ahead, backend from the
    [FIELDREP_BACKEND] environment variable (in-memory when unset).
    [prefetch] is the sequential read-ahead depth in pages (see
    {!Buffer_pool}). *)

val page_size : t -> int

val backend_name : t -> string
(** ["mem"] or ["file"]. *)

val close : t -> unit
(** Flush the pool and release backend resources (descriptors, an
    auto-created backing directory).  Idempotent at the disk level. *)

val set_prefetch : t -> int -> unit
(** Change the sequential read-ahead depth; 0 disables.  Negative depths
    are clamped to 0. *)

val prefetch_depth : t -> int
val stats : t -> Stats.t
val disk : t -> Disk.t
val create_file : t -> int
val delete_file : t -> int -> unit
val page_count : t -> int -> int
val with_page_read : t -> file:int -> page:int -> (Bytes.t -> 'a) -> 'a
val with_page_write : t -> file:int -> page:int -> (Bytes.t -> 'a) -> 'a

val with_pin : t -> file:int -> page:int -> dirty:bool -> (Bytes.t -> 'a) -> 'a
(** Generalised pinned access (see {!Buffer_pool.with_pin}); the pin is
    released even on exceptions. *)

val new_page : t -> file:int -> int
(** Fresh zeroed page, resident and dirty; no physical read. *)

val flush : t -> unit

val invalidate : t -> file:int -> page:int -> unit
(** Drop one page's frame without write-back (see
    {!Buffer_pool.invalidate}); scrub calls this after rewriting a page
    directly on disk.  Transient read faults are retried by the pool with
    bounded backoff before an error reaches the caller. *)

val run_cold : t -> (unit -> 'a) -> 'a
(** [run_cold t f] empties the buffer pool, zeroes the stats, runs [f], and
    flushes — so [stats t] afterwards reflects exactly the cold-cache I/O of
    [f].  This realises the cost model's assumption that a query reads each
    page it needs exactly once. *)

val reset_stats : t -> unit
val total_pages : t -> int
