exception Crash of string
exception Read_error of string
exception Corrupt_page of { file : int; page : int }

(* Each page carries a checksum trailer kept out of the page image —
   conceptually the 8 spare bytes of a 520-byte sector — so the
   slotted-page layout (whose directory grows down from the page end) and
   the cost model's page capacity are untouched.  Where the trailer
   physically lives is the backend's business (an int array for [Mem], 8
   real bytes per slot for [File]); verification, quarantine and fault
   injection all stay here, shared by every backend. *)

type backend_kind = Mem | File of string option

type packed = P : (module Backend.S with type t = 'a) * 'a -> packed

type failpoint = { mutable remaining : int; mutable fires : int; torn : bool }

type read_failpoint = {
  mutable r_remaining : int;
  mutable r_fires : int;
  every : int;
  mutable tick : int;
}

type t = {
  page_size : int;
  zero_sum : int;
  stats : Stats.t;
  backend : packed;
  backend_name : string;
  scratch : Bytes.t;  (* verification / read-modify-write staging *)
  mutable next_file : int;
  mutable failpoint : failpoint option;
  mutable read_failpoint : read_failpoint option;
  quarantine_tbl : (int * int, unit) Hashtbl.t;
}

let backend_of_env () =
  match Sys.getenv_opt "FIELDREP_BACKEND" with
  | None | Some "" | Some "mem" -> Mem
  | Some "file" -> File None
  | Some other ->
      invalid_arg
        (Printf.sprintf "FIELDREP_BACKEND: unknown backend %S (mem or file)" other)

let create ?(page_size = 4096) ?backend stats =
  let kind = match backend with Some k -> k | None -> backend_of_env () in
  let backend, backend_name =
    match kind with
    | Mem -> (P ((module Backend.Mem), Backend.Mem.create ~page_size), Backend.Mem.label)
    | File dir ->
        (P ((module Backend.File), Backend.File.create ~page_size ?dir ()), Backend.File.label)
  in
  {
    page_size;
    zero_sum = Checksum.fnv1a32 (Bytes.make page_size '\000') 0 page_size;
    stats;
    backend;
    backend_name;
    scratch = Bytes.create page_size;
    next_file = 0;
    failpoint = None;
    read_failpoint = None;
    quarantine_tbl = Hashtbl.create 8;
  }

let page_size t = t.page_size
let stats t = t.stats
let backend_name t = t.backend_name
let sum_of t bytes = Checksum.fnv1a32 bytes 0 t.page_size

let close t =
  let (P ((module B), b)) = t.backend in
  B.close b

let create_file t =
  let id = t.next_file in
  t.next_file <- id + 1;
  let (P ((module B), b)) = t.backend in
  B.create_file b ~id;
  id

let delete_file t id =
  let (P ((module B), b)) = t.backend in
  if B.file_exists b ~id then B.delete_file b ~id;
  Hashtbl.iter
    (fun (f, p) () -> if f = id then Hashtbl.remove t.quarantine_tbl (f, p))
    (Hashtbl.copy t.quarantine_tbl)

let file_exists t id =
  let (P ((module B), b)) = t.backend in
  B.file_exists b ~id

(* Every entry point names itself in its unknown-file error (the PR 5
   named-error policy: no bare [Not_found] escapes the storage layer). *)
let known t ~op id =
  let (P ((module B), b)) = t.backend in
  if not (B.file_exists b ~id) then
    invalid_arg (Printf.sprintf "Disk.%s: unknown file %d" op id)

let page_count t id =
  known t ~op:"page_count" id;
  let (P ((module B), b)) = t.backend in
  B.page_count b ~id

let allocate_page t id =
  known t ~op:"allocate_page" id;
  let (P ((module B), b)) = t.backend in
  let page_no = B.page_count b ~id in
  B.grow b ~id;
  B.write_sum b ~file:id ~page:page_no ~sum:t.zero_sum;
  Stats.bump t.stats Stats.Pages_allocated;
  page_no

let check t ~op ~file page =
  known t ~op file;
  let (P ((module B), b)) = t.backend in
  let count = B.page_count b ~id:file in
  if page < 0 || page >= count then
    invalid_arg (Printf.sprintf "Disk: page %d out of range (count %d)" page count)

(* {2 Quarantine} *)

let quarantine t ~file ~page = Hashtbl.replace t.quarantine_tbl (file, page) ()
let quarantined t ~file ~page = Hashtbl.mem t.quarantine_tbl (file, page)
let clear_quarantine t ~file ~page = Hashtbl.remove t.quarantine_tbl (file, page)

let quarantined_pages t =
  Hashtbl.fold (fun k () acc -> k :: acc) t.quarantine_tbl [] |> List.sort compare

(* {2 Fault injection} *)

let set_failpoint ?(torn = false) ?(count = 1) t ~after_writes =
  if after_writes < 0 then invalid_arg "Disk.set_failpoint: negative count";
  if count < 1 then invalid_arg "Disk.set_failpoint: count must be >= 1";
  t.failpoint <- Some { remaining = after_writes; fires = count; torn }

let clear_failpoint t = t.failpoint <- None

let writes_until_crash t = Option.map (fun fp -> fp.remaining) t.failpoint

let set_read_failpoint ?(count = 1) ?(every = 1) t ~after_reads =
  if after_reads < 0 then invalid_arg "Disk.set_read_failpoint: negative count";
  if count < 1 then invalid_arg "Disk.set_read_failpoint: count must be >= 1";
  if every < 1 then invalid_arg "Disk.set_read_failpoint: every must be >= 1";
  t.read_failpoint <- Some { r_remaining = after_reads; r_fires = count; every; tick = 0 }

let clear_read_failpoint t = t.read_failpoint <- None

let corrupt_page t ~file ~page offsets =
  check t ~op:"corrupt_page" ~file page;
  let (P ((module B), b)) = t.backend in
  B.read b ~file ~page t.scratch;
  List.iter
    (fun off ->
      if off < 0 || off >= t.page_size then
        invalid_arg "Disk.corrupt_page: offset out of range";
      Bytes.set t.scratch off (Char.chr (Char.code (Bytes.get t.scratch off) lxor 0xff)))
    offsets;
  B.write b ~file ~page ~len:t.page_size t.scratch
(* the stored checksum is deliberately left stale: that is the corruption *)

let tear_page t ~file ~page =
  check t ~op:"tear_page" ~file page;
  let (P ((module B), b)) = t.backend in
  B.read b ~file ~page t.scratch;
  Bytes.fill t.scratch (t.page_size / 2) (t.page_size - (t.page_size / 2)) '\000';
  B.write b ~file ~page ~len:t.page_size t.scratch

let verify_page t ~file ~page =
  check t ~op:"verify_page" ~file page;
  let (P ((module B), b)) = t.backend in
  B.read b ~file ~page t.scratch;
  B.read_sum b ~file ~page = sum_of t t.scratch

(* {2 Physical I/O} *)

let read_page t ~file ~page buf =
  check t ~op:"read_page" ~file page;
  assert (Bytes.length buf = t.page_size);
  if quarantined t ~file ~page then raise (Corrupt_page { file; page });
  (match t.read_failpoint with
  | Some rf when rf.r_remaining > 0 -> rf.r_remaining <- rf.r_remaining - 1
  | Some rf ->
      rf.tick <- rf.tick + 1;
      if rf.tick mod rf.every = 0 then begin
        rf.r_fires <- rf.r_fires - 1;
        if rf.r_fires <= 0 then t.read_failpoint <- None;
        raise
          (Read_error
             (Printf.sprintf "injected transient read error on file %d page %d"
                file page))
      end
  | None -> ());
  (* Stage the read so a verification failure leaves the caller's buffer
     untouched. *)
  let (P ((module B), b)) = t.backend in
  B.read b ~file ~page t.scratch;
  if B.read_sum b ~file ~page <> sum_of t t.scratch then begin
    quarantine t ~file ~page;
    Stats.note_checksum_failure t.stats;
    raise (Corrupt_page { file; page })
  end;
  Bytes.blit t.scratch 0 buf 0 t.page_size;
  Stats.bump t.stats Stats.Page_reads;
  Stats.record_read t.stats ~file

let write_page t ~file ~page buf =
  check t ~op:"write_page" ~file page;
  assert (Bytes.length buf = t.page_size);
  let (P ((module B), b)) = t.backend in
  (match t.failpoint with
  | Some fp when fp.remaining <= 0 ->
      (* A torn write lands half the buffer but never the trailer update, so
         the page fails verification on the next read — exactly how a real
         checksummed store detects torn data pages. *)
      if fp.torn then B.write b ~file ~page ~len:(t.page_size / 2) buf;
      fp.fires <- fp.fires - 1;
      if fp.fires <= 0 then t.failpoint <- None;
      raise
        (Crash
           (Printf.sprintf "injected crash on write to file %d page %d%s" file
              page
              (if fp.torn then " (torn)" else "")))
  | Some fp -> fp.remaining <- fp.remaining - 1
  | None -> ());
  B.write b ~file ~page ~len:t.page_size buf;
  B.write_sum b ~file ~page ~sum:(sum_of t buf);
  (* rewriting a page with fresh, checksummed content lifts its quarantine *)
  clear_quarantine t ~file ~page;
  Stats.bump t.stats Stats.Page_writes;
  Stats.record_write t.stats ~file

let dump_page t ~file ~page =
  check t ~op:"dump_page" ~file page;
  let (P ((module B), b)) = t.backend in
  let out = Bytes.create t.page_size in
  B.read b ~file ~page out;
  out

let restore_file t ~id pages =
  Array.iter (fun p -> assert (Bytes.length p = t.page_size)) pages;
  let (P ((module B), b)) = t.backend in
  if B.file_exists b ~id then B.delete_file b ~id;
  B.create_file b ~id;
  Array.iteri
    (fun page p ->
      B.grow b ~id;
      B.write b ~file:id ~page ~len:t.page_size p;
      B.write_sum b ~file:id ~page ~sum:(sum_of t p))
    pages;
  if id >= t.next_file then t.next_file <- id + 1

let next_file_id t = t.next_file
let reserve_file_ids t n = if n > t.next_file then t.next_file <- n

let total_pages t =
  let (P ((module B), b)) = t.backend in
  List.fold_left (fun acc id -> acc + B.page_count b ~id) 0 (B.file_ids b)

let file_ids t =
  let (P ((module B), b)) = t.backend in
  B.file_ids b
