exception Crash of string
exception Read_error of string
exception Corrupt_page of { file : int; page : int }

(* [sums] is a per-page checksum sidecar — conceptually the page trailer a
   real disk format would store in the 8 spare bytes of a 520-byte sector.
   Keeping it out of the page image means the slotted-page layout (whose
   directory grows down from the page end) and the cost model's page
   capacity are untouched. *)
type file = {
  mutable pages : Bytes.t array;
  mutable count : int;
  mutable sums : int array;
}

type failpoint = { mutable remaining : int; mutable fires : int; torn : bool }

type read_failpoint = {
  mutable r_remaining : int;
  mutable r_fires : int;
  every : int;
  mutable tick : int;
}

type t = {
  page_size : int;
  zero_sum : int;
  stats : Stats.t;
  files : (int, file) Hashtbl.t;
  mutable next_file : int;
  mutable failpoint : failpoint option;
  mutable read_failpoint : read_failpoint option;
  quarantine_tbl : (int * int, unit) Hashtbl.t;
}

let create ?(page_size = 4096) stats =
  {
    page_size;
    zero_sum = Checksum.fnv1a32 (Bytes.make page_size '\000') 0 page_size;
    stats;
    files = Hashtbl.create 16;
    next_file = 0;
    failpoint = None;
    read_failpoint = None;
    quarantine_tbl = Hashtbl.create 8;
  }

let page_size t = t.page_size
let stats t = t.stats
let sum_of t bytes = Checksum.fnv1a32 bytes 0 t.page_size

let create_file t =
  let id = t.next_file in
  t.next_file <- id + 1;
  Hashtbl.replace t.files id { pages = [||]; count = 0; sums = [||] };
  id

let delete_file t id =
  Hashtbl.remove t.files id;
  Hashtbl.iter
    (fun (f, p) () -> if f = id then Hashtbl.remove t.quarantine_tbl (f, p))
    (Hashtbl.copy t.quarantine_tbl)

let file_exists t id = Hashtbl.mem t.files id

let find t id =
  match Hashtbl.find_opt t.files id with
  | Some f -> f
  | None -> raise Not_found

let page_count t id = (find t id).count

let allocate_page t id =
  let f = find t id in
  if f.count = Array.length f.pages then begin
    let cap = max 8 (2 * Array.length f.pages) in
    let pages = Array.make cap Bytes.empty in
    Array.blit f.pages 0 pages 0 f.count;
    f.pages <- pages;
    let sums = Array.make cap 0 in
    Array.blit f.sums 0 sums 0 f.count;
    f.sums <- sums
  end;
  let page_no = f.count in
  f.pages.(page_no) <- Bytes.make t.page_size '\000';
  f.sums.(page_no) <- t.zero_sum;
  f.count <- f.count + 1;
  t.stats.pages_allocated <- t.stats.pages_allocated + 1;
  page_no

let check t f page =
  if page < 0 || page >= f.count then
    invalid_arg (Printf.sprintf "Disk: page %d out of range (count %d)" page f.count);
  ignore t

(* {2 Quarantine} *)

let quarantine t ~file ~page = Hashtbl.replace t.quarantine_tbl (file, page) ()
let quarantined t ~file ~page = Hashtbl.mem t.quarantine_tbl (file, page)
let clear_quarantine t ~file ~page = Hashtbl.remove t.quarantine_tbl (file, page)

let quarantined_pages t =
  Hashtbl.fold (fun k () acc -> k :: acc) t.quarantine_tbl [] |> List.sort compare

(* {2 Fault injection} *)

let set_failpoint ?(torn = false) ?(count = 1) t ~after_writes =
  if after_writes < 0 then invalid_arg "Disk.set_failpoint: negative count";
  if count < 1 then invalid_arg "Disk.set_failpoint: count must be >= 1";
  t.failpoint <- Some { remaining = after_writes; fires = count; torn }

let clear_failpoint t = t.failpoint <- None

let writes_until_crash t = Option.map (fun fp -> fp.remaining) t.failpoint

let set_read_failpoint ?(count = 1) ?(every = 1) t ~after_reads =
  if after_reads < 0 then invalid_arg "Disk.set_read_failpoint: negative count";
  if count < 1 then invalid_arg "Disk.set_read_failpoint: count must be >= 1";
  if every < 1 then invalid_arg "Disk.set_read_failpoint: every must be >= 1";
  t.read_failpoint <- Some { r_remaining = after_reads; r_fires = count; every; tick = 0 }

let clear_read_failpoint t = t.read_failpoint <- None

let corrupt_page t ~file ~page offsets =
  let f = find t file in
  check t f page;
  let bytes = f.pages.(page) in
  List.iter
    (fun off ->
      if off < 0 || off >= t.page_size then
        invalid_arg "Disk.corrupt_page: offset out of range";
      Bytes.set bytes off (Char.chr (Char.code (Bytes.get bytes off) lxor 0xff)))
    offsets
(* the stored checksum is deliberately left stale: that is the corruption *)

let tear_page t ~file ~page =
  let f = find t file in
  check t f page;
  Bytes.fill f.pages.(page) (t.page_size / 2) (t.page_size - (t.page_size / 2)) '\000'

let verify_page t ~file ~page =
  let f = find t file in
  check t f page;
  f.sums.(page) = sum_of t f.pages.(page)

(* {2 Physical I/O} *)

let read_page t ~file ~page buf =
  let f = find t file in
  check t f page;
  assert (Bytes.length buf = t.page_size);
  if quarantined t ~file ~page then raise (Corrupt_page { file; page });
  (match t.read_failpoint with
  | Some rf when rf.r_remaining > 0 -> rf.r_remaining <- rf.r_remaining - 1
  | Some rf ->
      rf.tick <- rf.tick + 1;
      if rf.tick mod rf.every = 0 then begin
        rf.r_fires <- rf.r_fires - 1;
        if rf.r_fires <= 0 then t.read_failpoint <- None;
        raise
          (Read_error
             (Printf.sprintf "injected transient read error on file %d page %d"
                file page))
      end
  | None -> ());
  if f.sums.(page) <> sum_of t f.pages.(page) then begin
    quarantine t ~file ~page;
    Stats.note_checksum_failure t.stats;
    raise (Corrupt_page { file; page })
  end;
  Bytes.blit f.pages.(page) 0 buf 0 t.page_size;
  t.stats.page_reads <- t.stats.page_reads + 1;
  Stats.record_read t.stats ~file

let write_page t ~file ~page buf =
  let f = find t file in
  check t f page;
  assert (Bytes.length buf = t.page_size);
  (match t.failpoint with
  | Some fp when fp.remaining <= 0 ->
      (* A torn write lands half the buffer but never the trailer update, so
         the page fails verification on the next read — exactly how a real
         checksummed store detects torn data pages. *)
      if fp.torn then Bytes.blit buf 0 f.pages.(page) 0 (t.page_size / 2);
      fp.fires <- fp.fires - 1;
      if fp.fires <= 0 then t.failpoint <- None;
      raise
        (Crash
           (Printf.sprintf "injected crash on write to file %d page %d%s" file
              page
              (if fp.torn then " (torn)" else "")))
  | Some fp -> fp.remaining <- fp.remaining - 1
  | None -> ());
  Bytes.blit buf 0 f.pages.(page) 0 t.page_size;
  f.sums.(page) <- sum_of t buf;
  (* rewriting a page with fresh, checksummed content lifts its quarantine *)
  clear_quarantine t ~file ~page;
  t.stats.page_writes <- t.stats.page_writes + 1;
  Stats.record_write t.stats ~file

let dump_page t ~file ~page =
  let f = find t file in
  check t f page;
  Bytes.copy f.pages.(page)

let restore_file t ~id pages =
  let count = Array.length pages in
  Array.iter (fun p -> assert (Bytes.length p = t.page_size)) pages;
  Hashtbl.replace t.files id
    {
      pages = Array.map Bytes.copy pages;
      count;
      sums = Array.map (fun p -> sum_of t p) pages;
    };
  if id >= t.next_file then t.next_file <- id + 1

let next_file_id t = t.next_file
let reserve_file_ids t n = if n > t.next_file then t.next_file <- n

let total_pages t = Hashtbl.fold (fun _ f acc -> acc + f.count) t.files 0
let file_ids t = Hashtbl.fold (fun id _ acc -> id :: acc) t.files [] |> List.sort Int.compare
