(** Buffer pool with clock (second-chance) replacement.

    All page access from the upper layers goes through [with_page_read] /
    [with_page_write]; a frame is pinned for the duration of the callback and
    unpinned afterwards, even on exceptions.  Dirty frames are written back
    on eviction or on [flush].

    {1 Sequential read-ahead}

    When [prefetch] is positive, two consecutive demand misses on adjacent
    pages of one file mark a sequential run, and the pool reads the next
    [prefetch] pages of that file into frames ahead of demand.  Prefetched
    pages cost a physical read when issued ([prefetch_issued]) and turn the
    later demand access into a buffer hit ([prefetch_hits]); a run that hits
    a fault or an exhausted pool just stops.  The default depth is 0
    (disabled) so cost-model validation sees exactly the paper's per-page
    read counts. *)

type t

val create : ?prefetch:int -> Disk.t -> frames:int -> t
(** [frames] must be positive.  [prefetch] is the read-ahead depth in pages
    (default 0 = off). *)

val capacity : t -> int
val resident : t -> int

val set_prefetch : t -> int -> unit
(** Change the read-ahead depth; 0 disables. *)

val prefetch_depth : t -> int

val pin : t -> file:int -> page:int -> dirty:bool -> Bytes.t
(** Low-level: install (reading if absent) and pin the page's frame, and
    return its buffer.  Every [pin] must be balanced by {!unpin} on all
    paths, including exceptional ones — fieldrep-lint rule P1 enforces this,
    so prefer {!with_pin} / {!with_page_read} / {!with_page_write}, which
    cannot leak the pin. *)

val unpin : t -> file:int -> page:int -> unit
(** Release one pin taken by {!pin}.  Raises [Invalid_argument] if the page
    is not resident or not pinned. *)

val with_pin : t -> file:int -> page:int -> dirty:bool -> (Bytes.t -> 'a) -> 'a
(** [pin], run the callback, [unpin] — even on exceptions.  The blessed
    combinator behind {!with_page_read} and {!with_page_write}; the callback
    must not retain the buffer past its return. *)

val with_page_read : t -> file:int -> page:int -> (Bytes.t -> 'a) -> 'a
(** The callback must not retain the buffer past its return. *)

val with_page_write : t -> file:int -> page:int -> (Bytes.t -> 'a) -> 'a
(** Like [with_page_read] but marks the frame dirty. *)

val new_page : t -> file:int -> int
(** Allocate a page on disk and install a zeroed, dirty frame for it without
    a physical read.  Returns the page number.  The victim frame is claimed
    before the disk page is allocated, so an [Exhausted] pool allocates
    nothing. *)

val flush : t -> unit
(** Write back all dirty frames (they stay resident and clean). *)

val clear : t -> unit
(** [flush] then drop every frame — the next access to any page is a
    physical read.  Used to run experiment queries cold.  Raises
    [Invalid_argument] {e before} mutating anything if any frame is
    pinned. *)

val invalidate : t -> file:int -> page:int -> unit
(** Discard (without write-back) the frame caching one page, if resident —
    used after the page is repaired on disk so the stale copy is never
    served.  Raises [Invalid_argument] if the frame is pinned. *)

val drop_file : t -> file:int -> unit
(** Discard (without write-back) every frame belonging to one file — used
    when that file is deleted, so its dirty pages are never flushed to a
    dead file.  Frames of other files stay resident.  Raises
    [Invalid_argument] {e before} mutating anything if one of the file's
    frames is pinned. *)

exception Exhausted
(** Raised when every frame is pinned and a new page is requested.  A failed
    install — [Exhausted], or a physical read that still fails after
    retries — leaves the pool unchanged: the victim frame keeps its page
    ([failed_reads] counts the read case). *)
