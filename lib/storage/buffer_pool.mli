(** Buffer pool with clock (second-chance) replacement.

    All page access from the upper layers goes through [with_page_read] /
    [with_page_write]; a frame is pinned for the duration of the callback and
    unpinned afterwards, even on exceptions.  Dirty frames are written back
    on eviction or on [flush]. *)

type t

val create : Disk.t -> frames:int -> t
(** [frames] must be positive. *)

val capacity : t -> int
val resident : t -> int

val with_page_read : t -> file:int -> page:int -> (Bytes.t -> 'a) -> 'a
(** The callback must not retain the buffer past its return. *)

val with_page_write : t -> file:int -> page:int -> (Bytes.t -> 'a) -> 'a
(** Like [with_page_read] but marks the frame dirty. *)

val new_page : t -> file:int -> int
(** Allocate a page on disk and install a zeroed, dirty frame for it without
    a physical read.  Returns the page number. *)

val flush : t -> unit
(** Write back all dirty frames (they stay resident and clean). *)

val clear : t -> unit
(** [flush] then drop every frame — the next access to any page is a
    physical read.  Used to run experiment queries cold. *)

val invalidate : t -> file:int -> page:int -> unit
(** Discard (without write-back) the frame caching one page, if resident —
    used after the page is repaired on disk so the stale copy is never
    served.  Raises [Invalid_argument] if the frame is pinned. *)

val drop_file : t -> file:int -> unit
(** Discard (without write-back) every frame belonging to one file — used
    when that file is deleted, so its dirty pages are never flushed to a
    dead file.  Frames of other files stay resident.  Raises
    [Invalid_argument] if one of the file's frames is pinned. *)

exception Exhausted
(** Raised when every frame is pinned and a new page is requested. *)
