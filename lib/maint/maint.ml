module Oid = Fieldrep_storage.Oid
module Stats = Fieldrep_storage.Stats
module Heap_file = Fieldrep_storage.Heap_file
module Lock = Fieldrep_txn.Lock
module Lockdep = Fieldrep_util.Lockdep

(* A walk job's mutable state is just the page cursor: everything else —
   what to lock, what to log, what to do per source — arrives as closures
   from lib/core, so this library never sees the engine. *)
type walk = {
  owner : int;
  set : string;
  file : Heap_file.t;
  mutable cursor : int;
  write_targets : Oid.t -> (string * Oid.t) list;
  log_step : upto:int -> unit;
  process : Oid.t -> unit;
}

type custom = { custom_step : quantum:int -> [ `More | `Yield | `Done ] }

type body = Walk of walk | Custom of custom

type job = {
  label : string;
  job_id : int;
  body : body;
  complete : unit -> unit;
}

let walk_job ~label ~job_id ~owner ~set ~file ~write_targets ~log_step
    ~process ~complete =
  {
    label;
    job_id;
    body =
      Walk { owner; set; file; cursor = 0; write_targets; log_step; process };
    complete;
  }

let custom_job ~label ~job_id ~step ~complete =
  { label; job_id; body = Custom { custom_step = step }; complete }

let job_id j = j.job_id
let label j = j.label
let cursor j = match j.body with Walk w -> w.cursor | Custom _ -> 0

type t = {
  locks : Lock.t;
  stats : Stats.t;
  mutable queue : job list;  (* FIFO: head runs next *)
}

let create ~locks ~stats = { locks; stats; queue = [] }

let pending t = List.length t.queue
let jobs t = List.map (fun j -> (j.label, j.job_id)) t.queue
let find t id = List.find_opt (fun j -> j.job_id = id) t.queue

let remaining_pages j =
  match j.body with
  | Walk w -> max 0 (Heap_file.page_count w.file - w.cursor)
  | Custom _ -> 0

let backlog t = List.fold_left (fun acc j -> acc + remaining_pages j) 0 t.queue

let note_backlog t = Stats.set_maint_backlog t.stats ~pages:(backlog t)

let enqueue t j =
  if find t j.job_id <> None then
    invalid_arg (Printf.sprintf "Maint: job %d is already queued" j.job_id);
  t.queue <- t.queue @ [ j ];
  note_backlog t

let dequeue t j =
  t.queue <- List.filter (fun j' -> j' != j) t.queue;
  note_backlog t

let rotate t =
  match t.queue with [] | [ _ ] -> () | j :: rest -> t.queue <- rest @ [ j ]

(* One quantum of a walk job.  The lock set is computed before anything is
   acquired: the engine is cooperative and single-threaded, so the reads
   that compute it cannot race a foreground writer, and a conflict
   surfaces with no partial effects — release and retry later. *)
let step_walk t j w ~quantum =
  let pages = Heap_file.page_count w.file in
  if w.cursor >= pages then begin
    j.complete ();
    dequeue t j;
    `Progress
  end
  else begin
    let from = w.cursor in
    let upto = min pages (from + quantum) in
    let oids =
      List.concat_map
        (fun page -> Heap_file.oids_on_page w.file ~page)
        (List.init (upto - from) (fun i -> from + i))
    in
    match
      Lock.acquire t.locks ~txn:w.owner (Lock.Set w.set) Lock.IX;
      List.iter
        (fun oid ->
          Lock.acquire t.locks ~txn:w.owner (Lock.Obj oid) Lock.X;
          List.iter
            (fun (set, target) ->
              Lock.acquire t.locks ~txn:w.owner (Lock.Set set) Lock.IX;
              Lock.acquire t.locks ~txn:w.owner (Lock.Obj target) Lock.X)
            (w.write_targets oid))
        oids
    with
    | exception (Lock.Would_block _ | Lock.Deadlock _) ->
        Lock.release_all t.locks ~txn:w.owner;
        Stats.note_maint_yield t.stats;
        rotate t;
        `Yield
    | () ->
        (* Write-ahead: the quantum is durable before it mutates a page,
           so a crash anywhere past this point replays it (idempotently)
           to completion. *)
        w.log_step ~upto;
        List.iter w.process oids;
        w.cursor <- upto;
        Lock.release_all t.locks ~txn:w.owner;
        Stats.note_maint_step t.stats ~pages:(upto - from);
        if w.cursor >= Heap_file.page_count w.file then begin
          j.complete ();
          dequeue t j
        end
        else note_backlog t;
        `Progress
  end

(* A maintenance step is its own logical task: the cooperative scheduler
   calls it between foreground operations, while open transactions still
   hold their strict-2PL locks.  Those locks belong to *other* tasks —
   conflicts surface as a yield, never a deadlock — so the step starts from
   an empty held-context ([Lockdep.isolated]) and only then scopes its own
   work under [Maint_job]. *)
let step t ~quantum =
  Lockdep.isolated @@ fun () ->
  Lockdep.with_held Lockdep.Maint_job @@ fun () ->
  match t.queue with
  | [] -> `Idle
  | j :: _ -> (
      match j.body with
      | Walk w -> step_walk t j w ~quantum
      | Custom c -> (
          match c.custom_step ~quantum with
          | `More ->
              Stats.note_maint_step t.stats ~pages:quantum;
              `Progress
          | `Yield ->
              Stats.note_maint_yield t.stats;
              rotate t;
              `Yield
          | `Done ->
              j.complete ();
              dequeue t j;
              `Progress))

let advance_to t ~job ~upto =
  Lockdep.isolated @@ fun () ->
  Lockdep.with_held Lockdep.Maint_job @@ fun () ->
  match find t job with
  | None -> failwith (Printf.sprintf "Maint: Maint_step for unknown job %d" job)
  | Some j -> (
      match j.body with
      | Custom _ ->
          failwith (Printf.sprintf "Maint: Maint_step for custom job %d" job)
      | Walk w ->
          let last = min upto (Heap_file.page_count w.file) in
          for page = w.cursor to last - 1 do
            List.iter w.process (Heap_file.oids_on_page w.file ~page)
          done;
          if upto > w.cursor then
            Stats.note_maint_step t.stats ~pages:(upto - w.cursor);
          w.cursor <- max w.cursor upto;
          note_backlog t)

let finish t ~job =
  match find t job with
  | None -> failwith (Printf.sprintf "Maint: Maint_done for unknown job %d" job)
  | Some j ->
      j.complete ();
      dequeue t j
