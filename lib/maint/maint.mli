(** Background maintenance: resumable jobs interleaved with foreground
    transactions.

    A maintenance {e job} is a cursor over a heap file that advances in
    bounded {e work quanta}.  Each quantum:

    + computes the sources on the next [quantum] pages and the data
      objects their per-source operation will write,
    + acquires short-duration locks through the foreground lock manager —
      [IX] on each touched set, [X] on each touched object — under a
      job-scoped lock owner,
    + logs one [Maint_step] record (via the [log_step] callback) {e before}
      mutating anything, then runs the per-source operation over the
      quantum's sources,
    + releases every lock it took.

    If any lock conflicts with a foreground transaction, the quantum
    releases whatever it acquired and {e yields} — nothing was logged,
    nothing was mutated, and the same quantum retries at the next pump.
    The queue rotates on a yield so one blocked job cannot starve the
    others.  The quantum size is the throttle: small quanta bound both the
    lock footprint and the work done between foreground operations.

    Durability is inherited from the logical-recovery model: the per-source
    operations (backfill, teardown) are idempotent, and the [Maint_step]
    record is logged before the quantum mutates pages, so replaying a
    logged quantum over a crashed store — however partial its writes —
    converges on the quantum's final state.

    This library is engine-agnostic: lib/core builds jobs from closures
    over its own engine entry points, which keeps the dependency arrow
    pointing from core to maint (mirroring [Wal.Recovery]'s applier). *)

module Oid = Fieldrep_storage.Oid
module Stats = Fieldrep_storage.Stats
module Heap_file = Fieldrep_storage.Heap_file
module Lock = Fieldrep_txn.Lock

type job

val walk_job :
  label:string ->
  job_id:int ->
  owner:int ->
  set:string ->
  file:Heap_file.t ->
  write_targets:(Oid.t -> (string * Oid.t) list) ->
  log_step:(upto:int -> unit) ->
  process:(Oid.t -> unit) ->
  complete:(unit -> unit) ->
  job
(** A resumable page-cursor walk over [file] (the heap file of [set]),
    starting at page 0.  [write_targets oid] names the [(set, object)]
    pairs the per-source operation may write {e besides} the source itself
    (the source and its set are locked implicitly).  [process] must be
    idempotent — a replayed quantum re-runs it.  [complete] runs once,
    after the cursor passes the last page (it should log [Maint_done] and
    flip the declaration's state). *)

val custom_job :
  label:string ->
  job_id:int ->
  step:(quantum:int -> [ `More | `Yield | `Done ]) ->
  complete:(unit -> unit) ->
  job
(** A job that manages its own progress (e.g. a scrub sweep): [step] runs
    one bounded quantum and reports whether work remains.  The queue
    counts its steps and yields in [Stats] and rotates it like any other
    job. *)

val job_id : job -> int
val label : job -> string

val cursor : job -> int
(** Next unprocessed page of a walk job; 0 for a custom job. *)

(** {1 The queue} *)

type t

val create : locks:Lock.t -> stats:Stats.t -> t

val enqueue : t -> job -> unit
(** Append to the queue (FIFO).  Raises [Invalid_argument] if a job with
    the same id is already queued. *)

val pending : t -> int
(** Queued (unfinished) jobs. *)

val jobs : t -> (string * int) list
(** [(label, job_id)] of every queued job, head first. *)

val find : t -> int -> job option

val backlog : t -> int
(** Heap pages the queued walk jobs have still to process — the value the
    [maint_backfill_pending] gauge tracks. *)

val step : t -> quantum:int -> [ `Progress | `Yield | `Idle ]
(** Run one quantum of the head job.  [`Progress]: the quantum ran (the
    job may or may not have completed).  [`Yield]: a foreground lock
    conflicted; the job released everything, moved to the back of the
    queue, and will retry.  [`Idle]: the queue is empty. *)

(** {1 Replay hooks}

    Recovery re-drives queued jobs from the log instead of pumping
    {!step}: locks are pointless (replay is single-threaded) and the
    already-logged records must not be logged again. *)

val advance_to : t -> job:int -> upto:int -> unit
(** Re-run the per-source operation of walk job [job] over pages
    [cursor, upto) — lock-free and without calling [log_step] — and move
    its cursor to [upto].  Raises [Failure] on an unknown job id or a
    custom job: a logged [Maint_step] must name a queued walk job. *)

val finish : t -> job:int -> unit
(** Run [complete] for job [job] and dequeue it — the replay of a
    [Maint_done] record.  Raises [Failure] on an unknown job id. *)
