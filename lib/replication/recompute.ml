module Listx = Fieldrep_util.Listx
module Oid = Fieldrep_storage.Oid
module Heap_file = Fieldrep_storage.Heap_file
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Record = Fieldrep_model.Record

type expected = {
  (* (link_id, target oid) -> expected entries, keyed by member. *)
  memberships : (int * Oid.t, (Oid.t, Oid.t) Hashtbl.t) Hashtbl.t;
  (* source oid -> (rep_id, absolute value index, expected hidden value);
     separate srefs are checked structurally instead. *)
  hidden : (Oid.t, (int * int * Value.t) list ref) Hashtbl.t;
  (* (rep_id, source oid) -> final oid, for separate paths. *)
  sep_final : (int * Oid.t, Oid.t option) Hashtbl.t;
}

let value_or_null (record : Record.t) idx =
  if idx < Array.length record.Record.values then record.Record.values.(idx)
  else Value.VNull

let membership_key tbl link_id target =
  match Hashtbl.find_opt tbl.memberships (link_id, target) with
  | Some t -> t
  | None ->
      let t = Hashtbl.create 8 in
      Hashtbl.replace tbl.memberships (link_id, target) t;
      t

let hidden_slot tbl source =
  match Hashtbl.find_opt tbl.hidden source with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.replace tbl.hidden source r;
      r

(* Recompute every expected structure by scanning the source sets.  This is
   the ground truth both for {!Invariants} (compare and report) and for
   [Scrub] (compare and repair): every replicated value is derivable by the
   forward walk below, which is why replicas are repairable from source
   objects while source fields themselves are not. *)
let compute (env : Engine.env) =
  let schema = env.Engine.schema in
  let registry = env.Engine.registry in
  let exp =
    {
      memberships = Hashtbl.create 64;
      hidden = Hashtbl.create 64;
      sep_final = Hashtbl.create 64;
    }
  in
  List.iter
    (fun (rep : Schema.replication) ->
      let set = rep.Schema.rpath.Path.source_set in
      let nodes = Registry.chain registry rep in
      let _, term = Registry.terminal_of registry rep in
      let src_file = env.Engine.file_of_set set in
      Heap_file.iter src_file (fun source_oid bytes ->
          let source_rec = Record.decode bytes in
          (* Forward walk. *)
          let rec walk current_rec acc = function
            | [] -> List.rev acc
            | (node : Registry.node) :: rest -> (
                let idx =
                  Ty.field_index
                    (Schema.find_type schema node.Registry.from_type)
                    node.Registry.step
                in
                match value_or_null current_rec idx with
                | Value.VRef oid ->
                    let r =
                      Record.decode (Heap_file.read (env.Engine.file_of_oid oid) oid)
                    in
                    walk r ((node, oid, r) :: acc) rest
                | Value.VNull | Value.VInt _ | Value.VString _ -> List.rev acc)
          in
          let targets = walk source_rec [] nodes in
          let complete = List.length targets = List.length nodes in
          let final =
            if complete then
              match List.rev targets with t :: _ -> Some t | [] -> None
            else None
          in
          (* Memberships. *)
          (match term.Registry.kind with
          | Registry.K_collapsed cid -> (
              match (final, targets) with
              | Some (_, final_oid, _), (_, x1, _) :: _ ->
                  Hashtbl.replace (membership_key exp cid final_oid) source_oid x1
              | _, _ -> ())
          | Registry.K_inplace | Registry.K_separate _ ->
              ignore
                (List.fold_left
                   (fun member (node, x_oid, _) ->
                     (match node.Registry.link_id with
                     | Some link_id ->
                         Hashtbl.replace
                           (membership_key exp link_id x_oid)
                           member Oid.nil
                     | None -> ());
                     x_oid)
                   source_oid targets));
          (* Hidden expectations. *)
          match term.Registry.kind with
          | Registry.K_inplace | Registry.K_collapsed _ ->
              let final_ty =
                Schema.find_type schema
                  (Listx.last_exn ~what:"Recompute: empty chain" nodes)
                    .Registry.to_type
              in
              List.iter
                (fun (fname, _) ->
                  let idx =
                    Schema.hidden_index schema set ~rep_id:rep.Schema.rep_id
                      ~field:(Some fname)
                  in
                  let v =
                    match final with
                    | Some (_, _, final_rec) ->
                        value_or_null final_rec (Ty.field_index final_ty fname)
                    | None -> Value.VNull
                  in
                  let slot = hidden_slot exp source_oid in
                  slot := (rep.Schema.rep_id, idx, v) :: !slot)
                term.Registry.fields
          | Registry.K_separate _ ->
              Hashtbl.replace exp.sep_final
                (rep.Schema.rep_id, source_oid)
                (Option.map (fun (_, oid, _) -> oid) final)))
    (* Only [Active] declarations have fully-derived state to recompute
       against: a [Building] one is mid-backfill, a [Dropping] one
       mid-teardown.  Their structures are audited by the maintenance job
       that owns them, not here. *)
    (List.filter
       (fun (r : Schema.replication) ->
         Schema.rep_state schema r.Schema.rep_id = Schema.Active)
       (Schema.replications schema));
  exp
