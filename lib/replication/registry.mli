(** Compiled replication paths: the link trie and the link-ID space.

    Replication declarations from the catalog are compiled into one trie per
    source set.  Each trie node stands for one *link* position — a prefix
    such as [Empl.dept] or [Empl.dept.org] — so paths with a common prefix
    share nodes, and therefore share links and link IDs exactly as in paper
    §4.1.4.  A node carries an inverted-path link ID when at least one path
    needs that level inverted (every level for in-place paths, all but the
    last for separate paths, none for collapsed paths, which get a single
    dedicated tagged link at their final node).

    Link-ID assignment replays declarations in [rep_id] order — including
    [Dropped] ones, which are then erased from the logical view (stripped
    from [passing]/[terminals]/[chain], their link IDs deallocated from
    {!link_kind}, exclusively-owned nodes left as inert [link_id = None]
    stubs) — so IDs are stable when declarations are appended {e or
    dropped}; required because the IDs are persisted inside stored
    objects. *)

type terminal_kind =
  | K_inplace
  | K_separate of int  (** its sref link id *)
  | K_collapsed of int  (** its collapsed (tagged) link id *)

type terminal = {
  rep : Fieldrep_model.Schema.replication;
  fields : (string * Fieldrep_model.Ty.scalar) list;
      (** replicated terminal fields of the final type *)
  kind : terminal_kind;
}

type node = {
  node_id : int;
  parent : int option;
  source_set : string;
  step : string;  (** reference attribute followed from the parent type *)
  prefix : string list;  (** steps from the source set up to here *)
  level : int;  (** 1-based *)
  from_type : string;
  to_type : string;
  link_id : int option;
      (** inverted link for this level ([None] e.g. for a separate path's
          final level) *)
  terminals : terminal list;  (** paths ending at this node *)
  children : int list;
  passing : Fieldrep_model.Schema.replication list;
      (** every path whose chain includes this node *)
}

(** What a link ID stored in an object's link section refers to. *)
type link_kind =
  | L_path of int  (** node id: inverted-path link of that trie node *)
  | L_sref of int  (** node id of the final node whose terminal owns it *)
  | L_collapsed of int  (** node id of the collapsed path's final node *)

type t

val compile : Fieldrep_model.Schema.t -> t
(** Raises [Invalid_argument] for unsupported combinations (a collapsed path
    must have level 2; more than 255 link IDs). *)

val node : t -> int -> node
val nodes : t -> node list
val roots : t -> string -> node list
(** Level-1 nodes of a source set. *)

val children : t -> node -> node list
val parent : t -> node -> node option
val link_kind : t -> int -> link_kind option
val max_link_id : t -> int

val chain : t -> Fieldrep_model.Schema.replication -> node list
(** The nodes of a path, level 1 first.  Raises [Not_found] for an unknown
    declaration. *)

val terminal_of : t -> Fieldrep_model.Schema.replication -> node * terminal
(** Final node and terminal record of a declaration. *)
