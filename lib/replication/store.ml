module Pager = Fieldrep_storage.Pager
module Heap_file = Fieldrep_storage.Heap_file
module Oid = Fieldrep_storage.Oid

type t = {
  pager : Pager.t;
  link_files : (int, Heap_file.t) Hashtbl.t;  (* link id -> file *)
  sprime_files : (int, Heap_file.t) Hashtbl.t;  (* rep id -> file *)
  by_file_id : (int, Heap_file.t) Hashtbl.t;
  link_file_ids : (int, unit) Hashtbl.t;  (* disk file ids of link files *)
}

let create pager =
  {
    pager;
    link_files = Hashtbl.create 8;
    sprime_files = Hashtbl.create 8;
    by_file_id = Hashtbl.create 8;
    link_file_ids = Hashtbl.create 8;
  }

let pager t = t.pager

let get_or_create table t key ~is_link =
  match Hashtbl.find_opt table key with
  | Some hf -> hf
  | None ->
      let hf = Heap_file.create t.pager in
      Hashtbl.replace table key hf;
      Hashtbl.replace t.by_file_id (Heap_file.file_id hf) hf;
      if is_link then Hashtbl.replace t.link_file_ids (Heap_file.file_id hf) ();
      hf

let link_file t id = get_or_create t.link_files t id ~is_link:true
let link_file_opt t id = Hashtbl.find_opt t.link_files id
let sprime_file t rep_id = get_or_create t.sprime_files t rep_id ~is_link:false
let sprime_file_opt t rep_id = Hashtbl.find_opt t.sprime_files rep_id

let is_link_oid t (oid : Oid.t) =
  (not (Oid.is_nil oid)) && Hashtbl.mem t.link_file_ids oid.Oid.file

let file_of_oid t (oid : Oid.t) = Hashtbl.find_opt t.by_file_id oid.Oid.file

let total_pages t =
  let count table =
    Hashtbl.fold (fun _ hf acc -> acc + Heap_file.page_count hf) table 0
  in
  count t.link_files + count t.sprime_files

let alias_links t ids =
  let existing = List.filter_map (fun id -> Hashtbl.find_opt t.link_files id) ids in
  let hf =
    match existing with
    | hf :: _ -> hf
    | [] ->
        let hf = Heap_file.create t.pager in
        Hashtbl.replace t.by_file_id (Heap_file.file_id hf) hf;
        Hashtbl.replace t.link_file_ids (Heap_file.file_id hf) ();
        hf
  in
  List.iter
    (fun id ->
      if not (Hashtbl.mem t.link_files id) then Hashtbl.replace t.link_files id hf)
    ids;
  hf

let bindings t =
  let dump table =
    Hashtbl.fold (fun k hf acc -> (k, Heap_file.file_id hf) :: acc) table []
    |> List.sort compare
  in
  (dump t.link_files, dump t.sprime_files)

let bind_link t ~link_id hf =
  Hashtbl.replace t.link_files link_id hf;
  Hashtbl.replace t.by_file_id (Heap_file.file_id hf) hf;
  Hashtbl.replace t.link_file_ids (Heap_file.file_id hf) ()

let bind_sprime t ~rep_id hf =
  Hashtbl.replace t.sprime_files rep_id hf;
  Hashtbl.replace t.by_file_id (Heap_file.file_id hf) hf

let gc t ~live_link ~live_sprime =
  let dead table live =
    Hashtbl.fold
      (fun id hf acc ->
        if live id then acc else (id, Heap_file.file_id hf) :: acc)
      table []
  in
  let dead_links = dead t.link_files live_link
  and dead_sprimes = dead t.sprime_files live_sprime in
  let dead_files = List.map snd dead_links @ List.map snd dead_sprimes in
  List.iter (fun (id, _) -> Hashtbl.remove t.link_files id) dead_links;
  List.iter (fun (id, _) -> Hashtbl.remove t.sprime_files id) dead_sprimes;
  (* A physical file goes only when no surviving binding aliases it
     (clustered links share one file across several link IDs). *)
  let still_bound file_id =
    let scan table =
      Hashtbl.fold
        (fun _ hf acc -> acc || Heap_file.file_id hf = file_id)
        table false
    in
    scan t.link_files || scan t.sprime_files
  in
  List.iter
    (fun file_id ->
      if not (still_bound file_id) then begin
        Hashtbl.remove t.by_file_id file_id;
        Hashtbl.remove t.link_file_ids file_id;
        Pager.delete_file t.pager file_id
      end)
    (List.sort_uniq compare dead_files)

let reset t =
  Hashtbl.iter (fun _ hf -> Pager.delete_file t.pager (Heap_file.file_id hf)) t.by_file_id;
  Hashtbl.reset t.link_files;
  Hashtbl.reset t.sprime_files;
  Hashtbl.reset t.by_file_id;
  Hashtbl.reset t.link_file_ids
