(** Storage owned by the replication engine.

    One heap file of link objects per link ID (kept separate so link objects
    never disturb the clustering of data sets — paper §4.1), and one heap
    file of replicated-value objects (S') per separate-replication
    declaration (paper §5).  Files are created on demand on the shared
    pager, so their I/O lands in the same counters as everything else. *)

type t

val create : Fieldrep_storage.Pager.t -> t
val pager : t -> Fieldrep_storage.Pager.t

val link_file : t -> int -> Fieldrep_storage.Heap_file.t
(** Heap file for a link ID (created on first use). *)

val alias_links : t -> int list -> Fieldrep_storage.Heap_file.t
(** Create (or reuse) one heap file shared by all the given link IDs — the
    co-clustering of related link objects of paper §4.3.2.  IDs that
    already have a file keep it; the remaining ones are bound to a single
    fresh file (or the file of the first bound ID, when one exists). *)

val link_file_opt : t -> int -> Fieldrep_storage.Heap_file.t option

val sprime_file : t -> int -> Fieldrep_storage.Heap_file.t
(** S' file for a separate replication's [rep_id] (created on first use). *)

val sprime_file_opt : t -> int -> Fieldrep_storage.Heap_file.t option

val is_link_oid : t -> Fieldrep_storage.Oid.t -> bool
(** Does the OID live in one of this store's link files?  Distinguishes a
    link pair that points at a link object from one that holds a direct
    member OID (the small-link elimination of paper §4.3.1). *)

val file_of_oid : t -> Fieldrep_storage.Oid.t -> Fieldrep_storage.Heap_file.t option
(** The owning link/S' file, if the OID belongs to this store. *)

val total_pages : t -> int
(** Pages across all link and S' files: the space overhead of replication. *)

val reset : t -> unit
(** Drop every link and S' file (used when a replication is rebuilt). *)

val gc : t -> live_link:(int -> bool) -> live_sprime:(int -> bool) -> unit
(** Unbind every link/S' ID its predicate calls dead, deleting physical
    files once no surviving binding aliases them (clustered links share one
    file across several IDs).  Run after a teardown completes: the dead
    declaration's emptied files must not shadow a later rebuild of the
    same path, whose re-compiled registry reuses the same IDs. *)

(** {1 Image support} *)

val bindings : t -> (int * int) list * (int * int) list
(** [(link id, disk file id)] and [(rep id, disk file id)] pairs. *)

val bind_link : t -> link_id:int -> Fieldrep_storage.Heap_file.t -> unit
(** Register an existing heap file as a link file (database image load). *)

val bind_sprime : t -> rep_id:int -> Fieldrep_storage.Heap_file.t -> unit
