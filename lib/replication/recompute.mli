(** Ground-truth recomputation of all derived replication state.

    Field replication makes every replicated value {e derivable
    redundancy}: hidden copies, link-object memberships and S' contents can
    all be recomputed by walking the forward path from the source objects.
    This module performs that walk once over every source set and returns
    the expected state of every derived structure.

    {!Invariants} compares the expectation with what is stored and reports
    violations; [Scrub] compares and {e repairs}.  Both must agree on the
    ground truth, which is why the walk lives here and nowhere else. *)

module Oid = Fieldrep_storage.Oid
module Value = Fieldrep_model.Value
module Record = Fieldrep_model.Record

type expected = {
  memberships : (int * Oid.t, (Oid.t, Oid.t) Hashtbl.t) Hashtbl.t;
      (** [(link_id, target oid)] -> expected entries, keyed by member oid,
          value = expected tag ([Oid.nil] when untagged) *)
  hidden : (Oid.t, (int * int * Value.t) list ref) Hashtbl.t;
      (** source oid -> [(rep_id, absolute value index, expected value)]
          for in-place and collapsed hidden copies *)
  sep_final : (int * Oid.t, Oid.t option) Hashtbl.t;
      (** [(rep_id, source oid)] -> final oid the source's S' should
          replicate, [None] when the path is incomplete *)
}

val compute : Engine.env -> expected
(** Scan every source set and recompute the expected derived state. *)

val value_or_null : Record.t -> int -> Value.t
(** The record's value at an index, [VNull] past the end — hidden slots of
    objects inserted before a replication was declared read as null. *)
