module Listx = Fieldrep_util.Listx
module Oid = Fieldrep_storage.Oid
module Heap_file = Fieldrep_storage.Heap_file
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Record = Fieldrep_model.Record

(* The recompute half — scanning source sets and walking forward references
   to derive what every structure should contain — lives in {!Recompute},
   shared with the scrub/repair subsystem. *)
let value_or_null = Recompute.value_or_null

let errors (env : Engine.env) =
  let schema = env.Engine.schema in
  let registry = env.Engine.registry in
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let exp = Recompute.compute env in
  (* Pass 1: every data object's link pairs and hidden fields are exactly as
     expected. *)
  let seen_memberships = Hashtbl.create 64 in
  let referenced_link_oids = Hashtbl.create 64 in
  List.iter
    (fun (set_name, _) ->
      let hf = env.Engine.file_of_set set_name in
      Heap_file.iter hf (fun oid bytes ->
          let record = Record.decode bytes in
          (* Hidden copies. *)
          (match Hashtbl.find_opt exp.hidden oid with
          | Some slot ->
              List.iter
                (fun (rep_id, idx, v) ->
                  (* Invalidated sources are legitimately stale under lazy
                     propagation. *)
                  if not (Hashtbl.mem env.Engine.pending (rep_id, Oid.to_int64 oid))
                  then begin
                    let actual = value_or_null record idx in
                    if not (Value.equal actual v) then
                      err "object %s: hidden slot %d is %s, expected %s"
                        (Oid.to_string oid) idx (Value.to_string actual)
                        (Value.to_string v)
                  end)
                !slot
          | None -> ());
          (* Link pairs. *)
          List.iter
            (fun (pair : Record.link) ->
              let link_id = pair.Record.link_id in
              match Registry.link_kind registry link_id with
              | None -> err "object %s: unknown link id %d" (Oid.to_string oid) link_id
              | Some (Registry.L_sref _) ->
                  (* Checked in the S' pass. *)
                  ()
              | Some (Registry.L_path _ | Registry.L_collapsed _)
                when not (Engine.link_active env link_id) ->
                  (* No Active declaration maintains this link: a Building
                     one is legitimately partial, a Dropping one
                     legitimately stale.  (A link id with *no* owner at all
                     is still an error above — teardown must finish before
                     a declaration is marked Dropped.) *)
                  ()
              | Some (Registry.L_path _ | Registry.L_collapsed _) -> (
                  Hashtbl.replace seen_memberships (link_id, oid) ();
                  let actual =
                    if Store.is_link_oid env.Engine.store pair.Record.link_oid then begin
                      Hashtbl.replace referenced_link_oids pair.Record.link_oid ();
                      Link_object.entries
                        (Link_object.decode
                           (Heap_file.read
                              (Store.link_file env.Engine.store link_id)
                              pair.Record.link_oid))
                    end
                    else
                      [ { Link_object.member = pair.Record.link_oid; tag = Oid.nil } ]
                  in
                  if actual = [] then
                    err "object %s: empty membership stored for link %d"
                      (Oid.to_string oid) link_id;
                  match Hashtbl.find_opt exp.memberships (link_id, oid) with
                  | None ->
                      err "object %s: unexpected membership for link %d"
                        (Oid.to_string oid) link_id
                  | Some expected_tbl ->
                      List.iter
                        (fun (e : Link_object.entry) ->
                          match Hashtbl.find_opt expected_tbl e.Link_object.member with
                          | None ->
                              err "link %d of %s: stray member %s" link_id
                                (Oid.to_string oid)
                                (Oid.to_string e.Link_object.member)
                          | Some expected_tag ->
                              if
                                (not (Oid.is_nil e.Link_object.tag))
                                && not (Oid.equal e.Link_object.tag expected_tag)
                              then
                                err "link %d of %s: member %s tagged %s, expected %s"
                                  link_id (Oid.to_string oid)
                                  (Oid.to_string e.Link_object.member)
                                  (Oid.to_string e.Link_object.tag)
                                  (Oid.to_string expected_tag))
                        actual;
                      if Hashtbl.length expected_tbl <> List.length actual then
                        err "link %d of %s: %d members stored, %d expected" link_id
                          (Oid.to_string oid) (List.length actual)
                          (Hashtbl.length expected_tbl)))
            record.Record.links))
    (Schema.sets schema);
  (* Pass 2: every expected membership was seen. *)
  Hashtbl.iter
    (fun (link_id, target) tbl ->
      if Hashtbl.length tbl > 0 && not (Hashtbl.mem seen_memberships (link_id, target))
      then
        err "link %d: target %s should hold %d members but has none" link_id
          (Oid.to_string target) (Hashtbl.length tbl))
    exp.memberships;
  (* Pass 3: no orphan link objects. *)
  List.iter
    (fun (node : Registry.node) ->
      let ids =
        (match node.Registry.link_id with Some id -> [ id ] | None -> [])
        @ List.filter_map
            (fun (t : Registry.terminal) ->
              match t.Registry.kind with
              | Registry.K_collapsed id -> Some id
              | Registry.K_inplace | Registry.K_separate _ -> None)
            node.Registry.terminals
      in
      List.iter
        (fun id ->
          match Store.link_file_opt env.Engine.store id with
          | None -> ()
          | Some _ when not (Engine.link_active env id) -> ()
          | Some hf ->
              Heap_file.iter_oids hf (fun loid ->
                  if not (Hashtbl.mem referenced_link_oids loid) then
                    err "link %d: orphan link object %s" id (Oid.to_string loid)))
        ids)
    (Registry.nodes registry);
  (* Pass 4: S' objects — srefs resolve, values match, refcounts add up. *)
  List.iter
    (fun (rep : Schema.replication) ->
      match rep.Schema.strategy with
      | Schema.Inplace -> ()
      | Schema.Separate -> (
          let set = rep.Schema.rpath.Path.source_set in
          let nodes = Registry.chain registry rep in
          let _, term = Registry.terminal_of registry rep in
          let sref_link =
            match term.Registry.kind with
            | Registry.K_separate id -> id
            | Registry.K_inplace | Registry.K_collapsed _ -> assert false
          in
          let idx = Schema.hidden_index schema set ~rep_id:rep.Schema.rep_id ~field:None in
          let src_file = env.Engine.file_of_set set in
          let claim_counts = Oid.Table.create 32 in
          Heap_file.iter src_file (fun source_oid bytes ->
              let record = Record.decode bytes in
              let expected_final =
                Option.join (Hashtbl.find_opt exp.sep_final (rep.Schema.rep_id, source_oid))
              in
              match (value_or_null record idx, expected_final) with
              | Value.VNull, None -> ()
              | Value.VNull, Some f ->
                  err "separate %s: source %s should reference S' of %s"
                    (Path.to_string rep.Schema.rpath) (Oid.to_string source_oid)
                    (Oid.to_string f)
              | Value.VRef sp, None ->
                  err "separate %s: source %s holds stale S' %s"
                    (Path.to_string rep.Schema.rpath) (Oid.to_string source_oid)
                    (Oid.to_string sp)
              | Value.VRef sp, Some final_oid ->
                  Oid.Table.replace claim_counts sp
                    (1 + Option.value ~default:0 (Oid.Table.find_opt claim_counts sp));
                  let sp_rec =
                    Record.decode
                      (Heap_file.read (Store.sprime_file env.Engine.store rep.Schema.rep_id) sp)
                  in
                  let owner = Value.as_ref (Record.field sp_rec 1) in
                  if not (Oid.equal owner final_oid) then
                    err "separate %s: S' %s owned by %s, source %s expects %s"
                      (Path.to_string rep.Schema.rpath) (Oid.to_string sp)
                      (Oid.to_string owner) (Oid.to_string source_oid)
                      (Oid.to_string final_oid);
                  (* Replicated values match the final object's current state. *)
                  let final_ty =
                    Schema.find_type schema
                      (Listx.last_exn ~what:"Invariants: empty chain" nodes)
                        .Registry.to_type
                  in
                  let final_rec =
                    Record.decode
                      (Heap_file.read (env.Engine.file_of_oid final_oid) final_oid)
                  in
                  List.iteri
                    (fun i (fname, _) ->
                      let expected =
                        value_or_null final_rec (Ty.field_index final_ty fname)
                      in
                      let actual = Record.field sp_rec (Engine.sprime_field_offset + i) in
                      if not (Value.equal actual expected) then
                        err "separate %s: S' %s field %s is %s, final has %s"
                          (Path.to_string rep.Schema.rpath) (Oid.to_string sp) fname
                          (Value.to_string actual) (Value.to_string expected))
                    term.Registry.fields
              | (Value.VInt _ | Value.VString _), _ ->
                  err "separate %s: source %s hidden slot holds a non-reference"
                    (Path.to_string rep.Schema.rpath) (Oid.to_string source_oid));
          (* Refcounts and sref pairs. *)
          match Store.sprime_file_opt env.Engine.store rep.Schema.rep_id with
          | None -> ()
          | Some hf ->
              Heap_file.iter hf (fun sp bytes ->
                  let sp_rec = Record.decode bytes in
                  let count = Value.as_int (Record.field sp_rec 0) in
                  let claimed = Option.value ~default:0 (Oid.Table.find_opt claim_counts sp) in
                  if count <> claimed then
                    err "separate %s: S' %s refcount %d but %d sources claim it"
                      (Path.to_string rep.Schema.rpath) (Oid.to_string sp) count claimed;
                  if count = 0 then
                    err "separate %s: S' %s has refcount 0 but still exists"
                      (Path.to_string rep.Schema.rpath) (Oid.to_string sp);
                  let owner = Value.as_ref (Record.field sp_rec 1) in
                  let owner_rec =
                    Record.decode (Heap_file.read (env.Engine.file_of_oid owner) owner)
                  in
                  match Record.find_link owner_rec sref_link with
                  | Some pair when Oid.equal pair.Record.link_oid sp -> ()
                  | Some _ ->
                      err "separate %s: owner %s sref pair points elsewhere"
                        (Path.to_string rep.Schema.rpath) (Oid.to_string owner)
                  | None ->
                      err "separate %s: owner %s is missing its sref pair"
                        (Path.to_string rep.Schema.rpath) (Oid.to_string owner))))
    (* Mid-reconfiguration declarations are audited by their maintenance
       job, not here — see the Recompute filter. *)
    (List.filter
       (fun (r : Schema.replication) ->
         Schema.rep_state schema r.Schema.rep_id = Schema.Active)
       (Schema.replications schema));
  List.rev !errs

let check env =
  match errors env with
  | [] -> ()
  | e :: rest ->
      failwith
        (Printf.sprintf "replication invariants violated (%d total): %s"
           (List.length rest + 1) e)

let check_all = check
