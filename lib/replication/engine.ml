module Oid = Fieldrep_storage.Oid
module Heap_file = Fieldrep_storage.Heap_file
module Listx = Fieldrep_util.Listx
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Record = Fieldrep_model.Record

type env = {
  schema : Schema.t;
  mutable registry : Registry.t;
  store : Store.t;
  file_of_set : string -> Heap_file.t;
  file_of_oid : Oid.t -> Heap_file.t;
  mutable on_hidden_update :
    string -> Oid.t -> before:Record.t -> after:Record.t -> unit;
  mutable batching : bool;
      (* group propagation fan-outs by page and rewrite each page under one
         pin; off = the per-object reference path (kept for comparison) *)
  pending : (int * int64, unit) Hashtbl.t;
      (* (rep_id, source oid) pairs whose hidden copies are stale under
         lazy propagation; the in-memory invalidation table *)
}

let make_env ~schema ~store ~file_of_set ~file_of_oid
    ?(on_hidden_update = fun _ _ ~before:_ ~after:_ -> ()) () =
  {
    schema;
    registry = Registry.compile schema;
    store;
    file_of_set;
    file_of_oid;
    on_hidden_update;
    batching = true;
    pending = Hashtbl.create 64;
  }

let recompile env = env.registry <- Registry.compile env.schema

(* ------------------------------------------------------------------ *)
(* Declaration life-cycle (online reconfiguration)                     *)

(* A *live* declaration still accumulates derived state: writers add
   memberships and refresh copies for it.  [Building] is live — that is the
   catch-up trigger of online replication: mutations behind the backfill
   watermark propagate through whatever links exist, mutations ahead of it
   are picked up when the backfill walk reaches them.  [Dropping] is not:
   writers only *remove* stale memberships (else the teardown job would
   race a writer re-creating what it just erased). *)
let rep_live env (rep : Schema.replication) =
  match Schema.rep_state env.schema rep.Schema.rep_id with
  | Schema.Building | Schema.Active -> true
  | Schema.Dropping | Schema.Dropped -> false

let rep_active env (rep : Schema.replication) =
  Schema.rep_state env.schema rep.Schema.rep_id = Schema.Active

(* Is the link's derived state complete and maintained — i.e. safe for the
   invariant checker to audit and for the scrubber to "repair" against?
   Only when some [Active] declaration owns/maintains it; a [Building]
   link is legitimately partial, a [Dropping] link legitimately stale. *)
let link_active env link_id =
  match Registry.link_kind env.registry link_id with
  | None -> false
  | Some (Registry.L_path node_id) ->
      List.exists (rep_active env)
        (Registry.node env.registry node_id).Registry.passing
  | Some (Registry.L_sref node_id) | Some (Registry.L_collapsed node_id) ->
      List.exists
        (fun (term : Registry.terminal) ->
          (match term.Registry.kind with
          | Registry.K_separate id | Registry.K_collapsed id -> id = link_id
          | Registry.K_inplace -> false)
          && rep_active env term.Registry.rep)
        (Registry.node env.registry node_id).Registry.terminals

let rep_of_id env rep_id =
  List.find_opt
    (fun (r : Schema.replication) -> r.Schema.rep_id = rep_id)
    (Schema.replications env.schema)

(* After a teardown completes, the dropped declaration's link and S' files
   are empty but still bound — and a later re-replication of the same path
   reuses the same link IDs (the registry replays dropped declarations for
   allocation stability), so [build] would mistake the stale empty file for
   already-built state.  Dead = no surviving declaration reaches it. *)
let gc_dead_derived env =
  Store.gc env.store
    ~live_link:(fun id -> Registry.link_kind env.registry id <> None)
    ~live_sprime:(fun rep_id -> rep_of_id env rep_id <> None)

(* ------------------------------------------------------------------ *)
(* Lazy-propagation invalidation table                                 *)

let pending_key (rep : Schema.replication) oid = (rep.Schema.rep_id, Oid.to_int64 oid)
let is_pending env rep oid = Hashtbl.mem env.pending (pending_key rep oid)
let mark_pending env rep oid = Hashtbl.replace env.pending (pending_key rep oid) ()
let clear_pending env rep oid = Hashtbl.remove env.pending (pending_key rep oid)
let pending_count env = Hashtbl.length env.pending
let pending_keys env = Hashtbl.fold (fun k () acc -> k :: acc) env.pending []

(* ------------------------------------------------------------------ *)
(* Record access                                                       *)

let data_file env (oid : Oid.t) =
  match Store.file_of_oid env.store oid with
  | Some hf -> hf
  | None -> env.file_of_oid oid

let read_record env oid = Record.decode (Heap_file.read (data_file env oid) oid)

let write_record env oid record =
  Heap_file.update (data_file env oid) oid (Record.encode record)

(* Hidden slots may postdate an object: reads beyond the stored width are
   null, writes extend the array (the subtyping of paper §4 realised lazily). *)
let value_or_null (record : Record.t) idx =
  if idx < Array.length record.Record.values then record.Record.values.(idx)
  else Value.VNull

let set_value_extending (record : Record.t) idx v =
  let n = Array.length record.Record.values in
  if idx < n then Record.set_field record idx v
  else begin
    let values =
      Array.init (idx + 1) (fun i ->
          if i < n then record.Record.values.(i) else Value.VNull)
    in
    values.(idx) <- v;
    { record with Record.values }
  end

let step_index env ~type_name ~step =
  Ty.field_index (Schema.find_type env.schema type_name) step

(* The object a node-step points at, or None when the reference is null. *)
let deref env ~from_type record step =
  match value_or_null record (step_index env ~type_name:from_type ~step) with
  | Value.VRef oid -> Some oid
  | Value.VNull -> None
  | (Value.VInt _ | Value.VString _) as v ->
      invalid_arg
        (Printf.sprintf "Engine: step %s holds non-reference %s" step
           (Value.to_string v))

(* ------------------------------------------------------------------ *)
(* Memberships                                                         *)

(* Small-link elimination applies to a link only if every declaration using
   it opts in (conservative join of the per-path options). *)
let node_threshold (node : Registry.node) =
  List.fold_left
    (fun acc (rep : Schema.replication) ->
      min acc rep.Schema.options.Schema.small_link_threshold)
    max_int node.Registry.passing

let untagged lo =
  List.for_all (fun (e : Link_object.entry) -> Oid.is_nil e.Link_object.tag)
    (Link_object.entries lo)

(* Current membership of [target] under link [link_id]. *)
let read_membership env ~link_id (target_rec : Record.t) =
  match Record.find_link target_rec link_id with
  | None -> (Link_object.empty, `None)
  | Some pair ->
      let loid = pair.Record.link_oid in
      if Store.is_link_oid env.store loid then
        let hf = Store.link_file env.store link_id in
        (Link_object.decode (Heap_file.read hf loid), `Object loid)
      else
        ( Link_object.of_entries [ { Link_object.member = loid; tag = Oid.nil } ],
          `Direct )

(* Apply [f] to the membership of [target] under [node]'s link; persists the
   result choosing between direct storage, a link object, or nothing.
   Returns [(was_empty, now_empty)]. *)
let modify_membership env (node : Registry.node) ~link_id ~threshold target_oid f =
  let target_rec = read_record env target_oid in
  ignore node;
  let lo, state = read_membership env ~link_id target_rec in
  let lo' = f lo in
  let was_empty = Link_object.is_empty lo in
  let now_empty = Link_object.is_empty lo' in
  let hf = Store.link_file env.store link_id in
  let delete_old () =
    match state with `Object loid -> Heap_file.delete hf loid | `Direct | `None -> ()
  in
  if now_empty then begin
    delete_old ();
    if state <> `None then write_record env target_oid (Record.remove_link target_rec link_id)
  end
  else begin
    let as_direct =
      threshold >= 1 && Link_object.cardinal lo' <= 1 && untagged lo'
    in
    if as_direct then begin
      let member =
        match Link_object.members lo' with [ m ] -> m | _ -> assert false
      in
      delete_old ();
      write_record env target_oid
        (Record.add_link target_rec { Record.link_oid = member; link_id })
    end
    else begin
      match state with
      | `Object loid ->
          if lo' != lo then Heap_file.update hf loid (Link_object.encode lo')
      | `Direct | `None ->
          let loid = Heap_file.insert hf (Link_object.encode lo') in
          write_record env target_oid
            (Record.add_link target_rec { Record.link_oid = loid; link_id })
    end
  end;
  (was_empty, now_empty)

let add_member env node target_oid entry =
  match node.Registry.link_id with
  | None -> (false, false)
  | Some link_id ->
      modify_membership env node ~link_id ~threshold:(node_threshold node)
        target_oid (fun lo -> Link_object.add lo entry)

let remove_member env node target_oid member =
  match node.Registry.link_id with
  | None -> (false, false)
  | Some link_id ->
      modify_membership env node ~link_id ~threshold:(node_threshold node)
        target_oid (fun lo -> Link_object.remove lo member)

let plain_entry member = { Link_object.member; tag = Oid.nil }

(* Registry.compile assigns a link id to every node the build/propagation
   paths reach; a [None] here is a compiler bug, not a data condition. *)
let require_link (node : Registry.node) =
  match node.Registry.link_id with
  | Some link_id -> link_id
  | None -> invalid_arg "Engine: node unexpectedly has no link id"

(* ------------------------------------------------------------------ *)
(* On-path transitions                                                 *)

(* [x] just came on-path at [node]; register it one level deeper on every
   branch, recursing where the deeper target was off-path too. *)
let rec ensure_deeper env (node : Registry.node) x_oid =
  List.iter
    (fun (child : Registry.node) ->
      match child.Registry.link_id with
      | None -> ()
      | Some _ when not (List.exists (rep_live env) child.Registry.passing) ->
          (* Every path through this level is being torn down: adding here
             would race the teardown cursor. *)
          ()
      | Some _ -> (
          let x_rec = read_record env x_oid in
          match deref env ~from_type:child.Registry.from_type x_rec child.Registry.step with
          | None -> ()
          | Some y ->
              let was_empty, now_empty = add_member env child y (plain_entry x_oid) in
              if was_empty && not now_empty then ensure_deeper env child y))
    (Registry.children env.registry node)

(* [x] just went off-path at [node]; retract it one level deeper on every
   branch, cascading further where targets empty out. *)
let rec cascade_off env (node : Registry.node) x_oid =
  List.iter
    (fun (child : Registry.node) ->
      match child.Registry.link_id with
      | None -> ()
      | Some _ -> (
          let x_rec = read_record env x_oid in
          match deref env ~from_type:child.Registry.from_type x_rec child.Registry.step with
          | None -> ()
          | Some y ->
              let _, now_empty = remove_member env child y x_oid in
              if now_empty then cascade_off env child y))
    (Registry.children env.registry node)

(* ------------------------------------------------------------------ *)
(* Inverted traversal                                                  *)

let membership_of env (node : Registry.node) x_oid =
  match node.Registry.link_id with
  | None -> Link_object.empty
  | Some link_id ->
      let x_rec = read_record env x_oid in
      fst (read_membership env ~link_id x_rec)

let sources_of env node target_oid =
  let rec collect (node : Registry.node) x_oid =
    let members = Link_object.members (membership_of env node x_oid) in
    match Registry.parent env.registry node with
    | None -> members
    | Some parent -> List.concat_map (collect parent) members
  in
  List.sort_uniq Oid.compare (collect node target_oid)

(* ------------------------------------------------------------------ *)
(* Forward walks and terminal maintenance                              *)

(* Objects along a path from a source object, as (node, oid) pairs; stops at
   the first null reference. *)
let forward_targets env (nodes : Registry.node list) source_rec =
  let rec go acc current_rec = function
    | [] -> List.rev acc
    | (node : Registry.node) :: rest -> (
        match deref env ~from_type:node.Registry.from_type current_rec node.Registry.step with
        | None -> List.rev acc
        | Some oid ->
            let r = read_record env oid in
            go ((node, oid, r) :: acc) r rest)
  in
  go [] source_rec nodes

let final_of env nodes source_rec =
  let targets = forward_targets env nodes source_rec in
  if List.length targets = List.length nodes then
    match List.rev targets with
    | (_, oid, r) :: _ -> Some (oid, r)
    | [] -> None
  else None

let sprime_field_offset = 2

(* Fetch or create the S' object of a final object for a separate path.
   Fresh S' objects start with refcount 0; callers bump it. *)
let sprime_for env (rep : Schema.replication) ~sref_link ~fields final_oid final_rec =
  match Record.find_link final_rec sref_link with
  | Some pair -> pair.Record.link_oid
  | None ->
      let final_ty = Schema.set_type env.schema rep.Schema.rpath.Path.source_set in
      ignore final_ty;
      let ty =
        Schema.find_type env.schema
          (Listx.nth_exn ~what:"Engine.sprime_for: path level out of type chain"
             (Schema.resolve_path env.schema rep.Schema.rpath).Schema.type_chain
             (Path.level rep.Schema.rpath))
      in
      let values =
        Array.of_list
          (Value.VInt 0 :: Value.VRef final_oid
          :: List.map
               (fun (f, _) -> value_or_null final_rec (Ty.field_index ty f))
               fields)
      in
      let tag = Schema.type_tag env.schema ty.Ty.tname in
      let hf = Store.sprime_file env.store rep.Schema.rep_id in
      let sp_oid = Heap_file.insert hf (Record.encode (Record.make ~type_tag:tag values)) in
      write_record env final_oid
        (Record.add_link final_rec { Record.link_oid = sp_oid; link_id = sref_link });
      sp_oid

let sprime_refcount_add env ~sref_link sp_oid delta =
  let hf = data_file env sp_oid in
  let r = Record.decode (Heap_file.read hf sp_oid) in
  let count = Value.as_int (Record.field r 0) + delta in
  assert (count >= 0);
  if count = 0 then begin
    let owner = Value.as_ref (Record.field r 1) in
    Heap_file.delete hf sp_oid;
    let owner_rec = read_record env owner in
    write_record env owner (Record.remove_link owner_rec sref_link)
  end
  else Heap_file.update hf sp_oid (Record.encode (Record.set_field r 0 (Value.VInt count)))

(* ------------------------------------------------------------------ *)
(* Page-batched fan-out                                                 *)

(* Runs of OIDs sharing one (file, page), in ascending physical order. *)
let group_by_page oids =
  let close acc = function
    | None -> acc
    | Some (key, xs) -> (key, List.rev xs) :: acc
  in
  let rec go acc current = function
    | [] -> List.rev (close acc current)
    | (oid : Oid.t) :: rest -> (
        let key = (oid.Oid.file, oid.Oid.page) in
        match current with
        | Some (key', xs) when key' = key -> go acc (Some (key, oid :: xs)) rest
        | (Some _ | None) as prev -> go (close acc prev) (Some (key, [ oid ])) rest)
  in
  go [] None oids

(* Apply [transform] to every object in [oids] (all of [set]), visiting
   pages in ascending (file, page) order.  With batching on, each page is
   read under one pin and rewritten under one pin — the paper's reason for
   keeping inverted structures in the referenced set's physical order —
   instead of one pin pair per object.  [transform] must only *read* other
   objects (it runs between the page's read and write pins, unpinned); it
   returns [Some updated] to rewrite the object or [None] to leave it.
   Change callbacks fire per object after the page's write completes. *)
let batched_rewrite env ~set oids ~transform =
  let sorted = List.sort_uniq Oid.compare oids in
  if not env.batching then
    List.iter
      (fun oid ->
        let r = read_record env oid in
        match transform oid r with
        | Some r' ->
            write_record env oid r';
            env.on_hidden_update set oid ~before:r ~after:r'
        | None -> ())
      sorted
  else
    List.iter
      (fun ((_file, page), oids) ->
        match oids with
        | [] -> ()
        | first :: _ ->
            let hf = data_file env first in
            let slots = List.map (fun (o : Oid.t) -> o.Oid.slot) oids in
            let changes = ref [] in
            (* One pin covers the head reads and the in-place rewrites;
               [transform] runs under it but only reads (chained objects
               re-pin their own pages, including this one, re-entrantly). *)
            Heap_file.modify_batch hf ~page slots ~f:(fun payloads ->
                (* [None] marks a chained object: fetch it normally. *)
                let records =
                  List.map2
                    (fun oid payload ->
                      match payload with
                      | Some bytes -> (oid, Record.decode bytes)
                      | None -> (oid, read_record env oid))
                    oids payloads
                in
                changes :=
                  List.filter_map
                    (fun (oid, r) ->
                      match transform oid r with
                      | Some r' -> Some (oid, r, r')
                      | None -> None)
                    records;
                List.map
                  (fun ((oid : Oid.t), _, r') -> (oid.Oid.slot, Record.encode r'))
                  !changes);
        List.iter
          (fun (oid, r, r') -> env.on_hidden_update set oid ~before:r ~after:r')
          !changes)
      (group_by_page sorted)

(* Desired hidden-field rewrite of one source record under an in-place or
   collapsed terminal; [None] when the stored copies already match. *)
let inplace_refresh_transform env (rep : Schema.replication) ~set ~nodes
    ~final_ty ~fields source_rec =
  let final = final_of env nodes source_rec in
  let changed = ref false in
  let updated =
    List.fold_left
      (fun acc (fname, _) ->
        let idx =
          Schema.hidden_index env.schema set ~rep_id:rep.Schema.rep_id
            ~field:(Some fname)
        in
        let desired =
          match final with
          | Some (_, final_rec) ->
              value_or_null final_rec (Ty.field_index final_ty fname)
          | None -> Value.VNull
        in
        if Value.equal (value_or_null acc idx) desired then acc
        else begin
          changed := true;
          set_value_extending acc idx desired
        end)
      source_rec fields
  in
  if !changed then Some updated else None

(* Recompute the hidden fields of one source object from the current state
   of the forward path (both strategies). *)
let refresh_terminal env (rep : Schema.replication) source_oid =
  let set = rep.Schema.rpath.Path.source_set in
  let nodes = Registry.chain env.registry rep in
  let _, term = Registry.terminal_of env.registry rep in
  let source_rec = read_record env source_oid in
  let changed = ref false in
  let updated =
    match term.Registry.kind with
    | Registry.K_inplace | Registry.K_collapsed _ -> (
        let final_ty_name =
          (Listx.last_exn ~what:"Engine.refresh_terminal: empty chain" nodes)
            .Registry.to_type
        in
        let final_ty = Schema.find_type env.schema final_ty_name in
        match
          inplace_refresh_transform env rep ~set ~nodes ~final_ty
            ~fields:term.Registry.fields source_rec
        with
        | Some updated ->
            changed := true;
            updated
        | None -> source_rec)
    | Registry.K_separate sref_link ->
        let idx =
          Schema.hidden_index env.schema set ~rep_id:rep.Schema.rep_id
            ~field:None
        in
        let desired =
          match final_of env nodes source_rec with
          | Some (final_oid, final_rec) ->
              Value.VRef
                (sprime_for env rep ~sref_link ~fields:term.Registry.fields
                   final_oid final_rec)
          | None -> Value.VNull
        in
        let current = value_or_null source_rec idx in
        if Value.equal current desired then source_rec
        else begin
          (match current with
          | Value.VRef old_sp -> sprime_refcount_add env ~sref_link old_sp (-1)
          | Value.VNull | Value.VInt _ | Value.VString _ -> ());
          (match desired with
          | Value.VRef new_sp -> sprime_refcount_add env ~sref_link new_sp 1
          | Value.VNull | Value.VInt _ | Value.VString _ -> ());
          changed := true;
          set_value_extending source_rec idx desired
        end
  in
  if !changed then begin
    write_record env source_oid updated;
    env.on_hidden_update set source_oid ~before:source_rec ~after:updated
  end;
  clear_pending env rep source_oid

(* Refresh many sources of one declaration, page-batched where the terminal
   allows it.  Separate terminals stay per-object — [sprime_for] /
   [sprime_refcount_add] rewrite final and S' objects as they go, which the
   read-then-write page batch must not interleave with — but still run in
   ascending physical order. *)
let refresh_batch env (rep : Schema.replication) oids =
  let _, term = Registry.terminal_of env.registry rep in
  match term.Registry.kind with
  | Registry.K_separate _ ->
      List.iter (refresh_terminal env rep) (List.sort_uniq Oid.compare oids)
  | Registry.K_inplace | Registry.K_collapsed _ ->
      let set = rep.Schema.rpath.Path.source_set in
      let nodes = Registry.chain env.registry rep in
      let final_ty =
        Schema.find_type env.schema
          (Listx.last_exn ~what:"Engine.refresh_batch: empty chain" nodes)
            .Registry.to_type
      in
      batched_rewrite env ~set oids ~transform:(fun oid source_rec ->
          clear_pending env rep oid;
          inplace_refresh_transform env rep ~set ~nodes ~final_ty
            ~fields:term.Registry.fields source_rec)

(* ------------------------------------------------------------------ *)
(* Source attach / detach                                              *)

let collapsed_link_id (term : Registry.terminal) =
  match term.Registry.kind with
  | Registry.K_collapsed id -> Some id
  | Registry.K_inplace | Registry.K_separate _ -> None

(* Membership bookkeeping for one source object joining a path. *)
let attach_source env (rep : Schema.replication) source_oid =
  let nodes = Registry.chain env.registry rep in
  let final_node, term = Registry.terminal_of env.registry rep in
  let source_rec = read_record env source_oid in
  (match collapsed_link_id term with
  | Some link_id -> (
      (* Collapsed 2-level path: a single tagged link at the final node. *)
      match forward_targets env nodes source_rec with
      | [ (_, x1, _); (_, x2, _) ] ->
          ignore
            (modify_membership env final_node ~link_id ~threshold:0 x2
               (fun lo ->
                 Link_object.add lo { Link_object.member = source_oid; tag = x1 }))
      | _ -> () (* path broken by a null reference: nothing to register *))
  | None -> (
      match forward_targets env nodes source_rec with
      | [] -> ()
      | (node1, x1, _) :: _ ->
          let was_empty, now_empty = add_member env node1 x1 (plain_entry source_oid) in
          if was_empty && not now_empty then ensure_deeper env node1 x1));
  refresh_terminal env rep source_oid

let detach_source env (rep : Schema.replication) source_oid =
  clear_pending env rep source_oid;
  let nodes = Registry.chain env.registry rep in
  let final_node, term = Registry.terminal_of env.registry rep in
  let source_rec = read_record env source_oid in
  (match collapsed_link_id term with
  | Some link_id -> (
      match forward_targets env nodes source_rec with
      | [ _; (_, x2, _) ] ->
          ignore
            (modify_membership env final_node ~link_id ~threshold:0 x2
               (fun lo -> Link_object.remove lo source_oid))
      | _ -> ())
  | None -> (
      match forward_targets env nodes source_rec with
      | [] -> ()
      | (node1, x1, _) :: _ ->
          let _, now_empty = remove_member env node1 x1 source_oid in
          if now_empty then cascade_off env node1 x1));
  (* Separate paths: drop this source's claim on its S' object. *)
  match term.Registry.kind with
  | Registry.K_separate sref_link -> (
      let idx =
        Schema.hidden_index env.schema rep.Schema.rpath.Path.source_set
          ~rep_id:rep.Schema.rep_id ~field:None
      in
      match value_or_null source_rec idx with
      | Value.VRef sp -> sprime_refcount_add env ~sref_link sp (-1)
      | Value.VNull | Value.VInt _ | Value.VString _ -> ())
  | Registry.K_inplace | Registry.K_collapsed _ -> ()

(* ------------------------------------------------------------------ *)
(* Online reconfiguration primitives (driven by lib/maint)             *)

(* Backfill one source object of a [Building] declaration.  Exactly
   [attach_source], which is idempotent — link membership adds dedupe by
   member, [refresh_terminal] compares before writing and balances S'
   refcounts — so a source already attached by the catch-up trigger (an
   insert or reference update that ran while the backfill cursor was
   behind it) converges instead of double-registering. *)
let backfill_source = attach_source

(* Tear down one source object's contribution to a [Dropping] declaration.
   Unlike [detach_source] (object deletion), the source object stays: only
   memberships no *live* path shares are removed, the S' claim is released,
   and the declaration's hidden slots are nulled.  Idempotent — a second
   visit finds no memberships, a null slot, and no S' reference. *)
let teardown_source env (rep : Schema.replication) source_oid =
  clear_pending env rep source_oid;
  let set = rep.Schema.rpath.Path.source_set in
  let nodes = Registry.chain env.registry rep in
  let final_node, term = Registry.terminal_of env.registry rep in
  let source_rec = read_record env source_oid in
  (match collapsed_link_id term with
  | Some link_id -> (
      (* The tagged link is exclusively this declaration's: always remove. *)
      match forward_targets env nodes source_rec with
      | [ _; (_, x2, _) ] ->
          ignore
            (modify_membership env final_node ~link_id ~threshold:0 x2
               (fun lo -> Link_object.remove lo source_oid))
      | _ -> ())
  | None ->
      (* Walk the forward chain; at each level whose node no live path
         shares, retract the previous object's membership.  Removals at
         deeper levels are shared across the sources reaching through one
         intermediate — [Link_object.remove] of an absent member no-ops, so
         whichever source's teardown quantum gets there first wins. *)
      ignore
        (List.fold_left
           (fun member ((node : Registry.node), x_oid, _) ->
             if
               node.Registry.link_id <> None
               && not (List.exists (rep_live env) node.Registry.passing)
             then ignore (remove_member env node x_oid member);
             x_oid)
           source_oid
           (forward_targets env nodes source_rec)));
  (* Null the declaration's hidden slots (releasing the S' claim first);
     re-read the record, the membership pass may have rewritten link
     sections along a self-referential chain. *)
  let source_rec = read_record env source_oid in
  let changed = ref false in
  let updated =
    match term.Registry.kind with
    | Registry.K_separate sref_link -> (
        let idx =
          Schema.hidden_index env.schema set ~rep_id:rep.Schema.rep_id
            ~field:None
        in
        match value_or_null source_rec idx with
        | Value.VRef sp ->
            sprime_refcount_add env ~sref_link sp (-1);
            changed := true;
            set_value_extending source_rec idx Value.VNull
        | Value.VNull | Value.VInt _ | Value.VString _ -> source_rec)
    | Registry.K_inplace | Registry.K_collapsed _ ->
        List.fold_left
          (fun acc (fname, _) ->
            let idx =
              Schema.hidden_index env.schema set ~rep_id:rep.Schema.rep_id
                ~field:(Some fname)
            in
            if Value.equal (value_or_null acc idx) Value.VNull then acc
            else begin
              changed := true;
              set_value_extending acc idx Value.VNull
            end)
          source_rec term.Registry.fields
  in
  if !changed then begin
    write_record env source_oid updated;
    env.on_hidden_update set source_oid ~before:source_rec ~after:updated
  end

(* ------------------------------------------------------------------ *)
(* Public maintenance entry points                                     *)

let on_insert env ~set oid =
  List.iter
    (fun rep -> if rep_live env rep then attach_source env rep oid)
    (Schema.replications_from env.schema set)

let on_delete env ~set oid =
  List.iter
    (fun rep -> detach_source env rep oid)
    (Schema.replications_from env.schema set);
  let record = read_record env oid in
  if record.Record.links <> [] then
    invalid_arg
      (Printf.sprintf
         "Engine: object %s is still referenced along a replication path"
         (Oid.to_string oid))

let on_scalar_update env ~set oid ~field value =
  ignore set;
  let record = read_record env oid in
  List.iter
    (fun (pair : Record.link) ->
      match Registry.link_kind env.registry pair.Record.link_id with
      | None -> ()
      | Some (Registry.L_sref node_id) ->
          let node = Registry.node env.registry node_id in
          List.iter
            (fun (term : Registry.terminal) ->
              match term.Registry.kind with
              | Registry.K_separate sid
                when sid = pair.Record.link_id && rep_live env term.Registry.rep
                -> (
                  match
                    List.find_index (fun (f, _) -> f = field) term.Registry.fields
                  with
                  | Some i ->
                      let sp = pair.Record.link_oid in
                      let hf = data_file env sp in
                      let r = Record.decode (Heap_file.read hf sp) in
                      Heap_file.update hf sp
                        (Record.encode
                           (Record.set_field r (sprime_field_offset + i) value))
                  | None -> ())
              | Registry.K_separate _ | Registry.K_inplace | Registry.K_collapsed _
                -> ())
            node.Registry.terminals
      | Some (Registry.L_collapsed node_id) ->
          let node = Registry.node env.registry node_id in
          List.iter
            (fun (term : Registry.terminal) ->
              match term.Registry.kind with
              | Registry.K_collapsed cid
                when cid = pair.Record.link_id && rep_live env term.Registry.rep
                ->
                  if List.mem_assoc field term.Registry.fields then begin
                    let rep = term.Registry.rep in
                    let set = rep.Schema.rpath.Path.source_set in
                    let lo, _ = read_membership env ~link_id:cid record in
                    if rep.Schema.options.Schema.lazy_propagation then
                      List.iter (mark_pending env rep) (Link_object.members lo)
                    else begin
                      let idx =
                        Schema.hidden_index env.schema set ~rep_id:rep.Schema.rep_id
                          ~field:(Some field)
                      in
                      batched_rewrite env ~set (Link_object.members lo)
                        ~transform:(fun _ r ->
                          Some (set_value_extending r idx value))
                    end
                  end
              | Registry.K_collapsed _ | Registry.K_inplace | Registry.K_separate _
                -> ())
            node.Registry.terminals
      | Some (Registry.L_path node_id) ->
          let node = Registry.node env.registry node_id in
          let interested =
            List.filter
              (fun (term : Registry.terminal) ->
                term.Registry.kind = Registry.K_inplace
                && List.mem_assoc field term.Registry.fields
                && rep_live env term.Registry.rep)
              node.Registry.terminals
          in
          let eager, lazy_ =
            List.partition
              (fun (term : Registry.terminal) ->
                not term.Registry.rep.Schema.options.Schema.lazy_propagation)
              interested
          in
          if interested <> [] then begin
            let sources = sources_of env node oid in
            (* Lazy paths: invalidate only — the write to each source is
               deferred until its hidden copy is next read. *)
            List.iter
              (fun (term : Registry.terminal) ->
                List.iter (mark_pending env term.Registry.rep) sources)
              lazy_;
            if eager <> [] then begin
              let set = node.Registry.source_set in
              batched_rewrite env ~set sources ~transform:(fun _ r0 ->
                  Some
                    (List.fold_left
                       (fun r (term : Registry.terminal) ->
                         let rep = term.Registry.rep in
                         let idx =
                           Schema.hidden_index env.schema set
                             ~rep_id:rep.Schema.rep_id ~field:(Some field)
                         in
                         set_value_extending r idx value)
                       r0 eager))
            end
          end)
    record.Record.links

(* ------------------------------------------------------------------ *)
(* Reference updates                                                   *)

let as_ref_opt = function
  | Value.VRef oid -> Some oid
  | Value.VNull | Value.VInt _ | Value.VString _ -> None

(* The changed object is a source-set member: move its level-1 membership
   and refresh every terminal rooted under the changed step. *)
let ref_update_source env ~set source_oid ~field ~old_target ~new_target =
  List.iter
    (fun (node1 : Registry.node) ->
      if node1.Registry.step = field then begin
        (match node1.Registry.link_id with
        | Some _ ->
            (match old_target with
            | Some o ->
                let _, now_empty = remove_member env node1 o source_oid in
                if now_empty then cascade_off env node1 o
            | None -> ());
            (match new_target with
            | Some nw when List.exists (rep_live env) node1.Registry.passing ->
                let was_empty, now_empty =
                  add_member env node1 nw (plain_entry source_oid)
                in
                if was_empty && not now_empty then ensure_deeper env node1 nw
            | Some _ | None -> ())
        | None -> ());
        List.iter
          (fun (rep : Schema.replication) ->
            let final_node, term = Registry.terminal_of env.registry rep in
            (match collapsed_link_id term with
            | Some link_id ->
                (* Move the collapsed entry between final link objects. *)
                (match old_target with
                | Some old_x1 -> (
                    let x1_rec = read_record env old_x1 in
                    match
                      deref env ~from_type:final_node.Registry.from_type x1_rec
                        final_node.Registry.step
                    with
                    | Some old_final ->
                        ignore
                          (modify_membership env final_node ~link_id ~threshold:0
                             old_final (fun lo -> Link_object.remove lo source_oid))
                    | None -> ())
                | None -> ());
                (match new_target with
                | Some new_x1 when rep_live env rep -> (
                    let x1_rec = read_record env new_x1 in
                    match
                      deref env ~from_type:final_node.Registry.from_type x1_rec
                        final_node.Registry.step
                    with
                    | Some new_final ->
                        ignore
                          (modify_membership env final_node ~link_id ~threshold:0
                             new_final (fun lo ->
                               Link_object.add lo
                                 { Link_object.member = source_oid; tag = new_x1 }))
                    | None -> ())
                | Some _ | None -> ())
            | None -> ());
            if rep_live env rep then refresh_terminal env rep source_oid)
          node1.Registry.passing
      end)
    (Registry.roots env.registry set)

(* The changed object sits at level >= 1 of some path: restructure the next
   level's link and recompute every source it carries. *)
let ref_update_intermediate env ~elem_type x_oid ~field ~old_target ~new_target =
  List.iter
    (fun (node : Registry.node) ->
      if node.Registry.to_type = elem_type then
        List.iter
          (fun (child : Registry.node) ->
            if child.Registry.step = field then begin
              (* Collapsed terminals at [child]: move the entries tagged with
                 this intermediate. *)
              List.iter
                (fun (term : Registry.terminal) ->
                  match collapsed_link_id term with
                  | Some link_id ->
                      let moved = ref [] in
                      (match old_target with
                      | Some o ->
                          ignore
                            (modify_membership env child ~link_id ~threshold:0 o
                               (fun lo ->
                                 moved := Link_object.entries_tagged lo x_oid;
                                 Link_object.remove_tagged lo x_oid))
                      | None -> ());
                      (match new_target with
                      | Some nw
                        when !moved <> [] && rep_live env term.Registry.rep ->
                          ignore
                            (modify_membership env child ~link_id ~threshold:0 nw
                               (fun lo ->
                                 List.fold_left Link_object.add lo !moved))
                      | Some _ | None -> ());
                      if rep_live env term.Registry.rep then
                        List.iter
                          (fun (e : Link_object.entry) ->
                            refresh_terminal env term.Registry.rep
                              e.Link_object.member)
                          !moved
                  | None -> ())
                child.Registry.terminals;
              (* Ordinary inverted links at [child]. *)
              match node.Registry.link_id with
              | None -> ()
              | Some _ ->
                  let on_path =
                    not (Link_object.is_empty (membership_of env node x_oid))
                  in
                  if on_path then begin
                    let sources = sources_of env node x_oid in
                    (match child.Registry.link_id with
                    | Some _ ->
                        (match old_target with
                        | Some o ->
                            let _, now_empty = remove_member env child o x_oid in
                            if now_empty then cascade_off env child o
                        | None -> ());
                        (match new_target with
                        | Some nw
                          when List.exists (rep_live env) child.Registry.passing
                          ->
                            let was_empty, now_empty =
                              add_member env child nw (plain_entry x_oid)
                            in
                            if was_empty && not now_empty then
                              ensure_deeper env child nw
                        | Some _ | None -> ())
                    | None -> ());
                    (* Refresh every source under this intermediate for every
                       path continuing through [child]. *)
                    List.iter
                      (fun (rep : Schema.replication) ->
                        if rep_live env rep then
                          List.iter
                            (fun s -> refresh_terminal env rep s)
                            sources)
                      child.Registry.passing
                  end
            end)
          (Registry.children env.registry node))
    (Registry.nodes env.registry)

let on_ref_update env ~set oid ~field ~old_value ~new_value =
  let old_target = as_ref_opt old_value in
  let new_target = as_ref_opt new_value in
  if not (Option.equal Oid.equal old_target new_target) then begin
    ref_update_source env ~set oid ~field ~old_target ~new_target;
    let elem_type = (Schema.set_type env.schema set).Ty.tname in
    ref_update_intermediate env ~elem_type oid ~field ~old_target ~new_target
  end

(* ------------------------------------------------------------------ *)
(* Bulk build                                                          *)

let build env (rep : Schema.replication) =
  let set = rep.Schema.rpath.Path.source_set in
  let nodes = Registry.chain env.registry rep in
  let final_node, term = Registry.terminal_of env.registry rep in
  let src_file = env.file_of_set set in
  match collapsed_link_id term with
  | Some link_id ->
      (* Gather (source, x1, final) triples, then lay the tagged link
         objects down in final-set physical order. *)
      let per_final = Oid.Table.create 64 in
      Heap_file.iter src_file (fun source_oid bytes ->
          let source_rec = Record.decode bytes in
          match forward_targets env nodes source_rec with
          | [ (_, x1, _); (_, x2, _) ] ->
              let prev = Option.value ~default:[] (Oid.Table.find_opt per_final x2) in
              Oid.Table.replace per_final x2
                ({ Link_object.member = source_oid; tag = x1 } :: prev)
          | _ -> ());
      let finals =
        Oid.Table.fold (fun oid _ acc -> oid :: acc) per_final []
        |> List.sort Oid.compare
      in
      List.iter
        (fun final_oid ->
          let entries = Oid.Table.find per_final final_oid in
          ignore
            (modify_membership env final_node ~link_id ~threshold:0 final_oid
               (fun lo -> List.fold_left Link_object.add lo entries)))
        finals;
      let sources = ref [] in
      Heap_file.iter_oids src_file (fun o -> sources := o :: !sources);
      refresh_batch env rep (List.rev !sources)
  | None ->
      (* Memberships per level, accumulated in memory, then laid down in
         target physical order — only for links not built by an earlier
         declaration sharing the prefix. *)
      let with_links =
        List.filter (fun (n : Registry.node) -> n.Registry.link_id <> None) nodes
      in
      let fresh_links =
        List.filter
          (fun (n : Registry.node) ->
            match n.Registry.link_id with
            | Some id -> Store.link_file_opt env.store id = None
            | None -> false)
          with_links
      in
      let tables =
        List.map (fun (n : Registry.node) -> (n.Registry.node_id, Oid.Table.create 256)) with_links
      in
      let table_for (n : Registry.node) = List.assoc n.Registry.node_id tables in
      Heap_file.iter src_file (fun source_oid bytes ->
          let source_rec = Record.decode bytes in
          let targets = forward_targets env nodes source_rec in
          ignore
            (List.fold_left
               (fun member (node, x_oid, _) ->
                 (match node.Registry.link_id with
                 | Some _ ->
                     let tbl = table_for node in
                     let prev = Option.value ~default:Oid.Set.empty (Oid.Table.find_opt tbl x_oid) in
                     Oid.Table.replace tbl x_oid (Oid.Set.add member prev)
                 | None -> ());
                 x_oid)
               source_oid targets));
      let build_node_target (node : Registry.node) target =
        let link_id = require_link node in
        let threshold = node_threshold node in
        let members = Oid.Table.find (table_for node) target in
        ignore
          (modify_membership env node ~link_id ~threshold target (fun lo ->
               Oid.Set.fold (fun m lo -> Link_object.add lo (plain_entry m)) members lo))
      in
      if rep.Schema.options.Schema.cluster_links && fresh_links <> [] then begin
        (* §4.3.2: all fresh levels share one file, and a target's link
           object is placed immediately before the link objects of the
           intermediates it fans out to, so multi-level propagation reads
           adjacent pages. *)
        ignore
          (Store.alias_links env.store
             (List.filter_map (fun (n : Registry.node) -> n.Registry.link_id) fresh_links));
        let is_fresh (n : Registry.node) =
          List.exists (fun (f : Registry.node) -> f.Registry.node_id = n.Registry.node_id) fresh_links
        in
        let rec place (node : Registry.node) target =
          if is_fresh node then begin
            build_node_target node target;
            match Registry.parent env.registry node with
            | Some parent when parent.Registry.link_id <> None ->
                let members = Oid.Table.find (table_for node) target in
                Oid.Set.iter
                  (fun m -> if Oid.Table.mem (table_for parent) m then place parent m)
                  members
            | Some _ | None -> ()
          end
        in
        (match List.rev with_links with
        | [] -> ()
        | deepest :: _ ->
            let targets =
              Oid.Table.fold (fun oid _ acc -> oid :: acc) (table_for deepest) []
              |> List.sort Oid.compare
            in
            List.iter (fun target -> place deepest target) targets;
            (* Any fresh node not reachable from the deepest level (e.g. the
               deepest itself was not fresh) is built level by level. *)
            List.iter
              (fun (node : Registry.node) ->
                let tbl = table_for node in
                Oid.Table.iter
                  (fun target _ ->
                    let target_rec = read_record env target in
                    match Record.find_link target_rec (require_link node) with
                    | Some _ -> ()
                    | None -> build_node_target node target)
                  tbl)
              fresh_links)
      end
      else
        List.iter
          (fun (node : Registry.node) ->
            (* Force creation so a later build treats this link as existing
               even if it stays empty. *)
            ignore (Store.link_file env.store (require_link node));
            let tbl = table_for node in
            let targets =
              Oid.Table.fold (fun oid _ acc -> oid :: acc) tbl []
              |> List.sort Oid.compare
            in
            List.iter (fun target -> build_node_target node target) targets)
          fresh_links;
      (* Terminals: hidden copies or S' objects (built in final physical
         order with refcounts set directly). *)
      (match term.Registry.kind with
      | Registry.K_inplace | Registry.K_collapsed _ ->
          let sources = ref [] in
          Heap_file.iter_oids src_file (fun o -> sources := o :: !sources);
          refresh_batch env rep (List.rev !sources)
      | Registry.K_separate sref_link ->
          let counts = Oid.Table.create 256 in
          let final_for = Oid.Table.create 256 in
          Heap_file.iter src_file (fun source_oid bytes ->
              let source_rec = Record.decode bytes in
              match final_of env nodes source_rec with
              | Some (final_oid, _) ->
                  Oid.Table.replace final_for source_oid final_oid;
                  Oid.Table.replace counts final_oid
                    (1 + Option.value ~default:0 (Oid.Table.find_opt counts final_oid))
              | None -> ());
          let finals =
            Oid.Table.fold (fun oid _ acc -> oid :: acc) counts []
            |> List.sort Oid.compare
          in
          let sp_of = Oid.Table.create 256 in
          List.iter
            (fun final_oid ->
              let final_rec = read_record env final_oid in
              let sp =
                sprime_for env rep ~sref_link ~fields:term.Registry.fields final_oid
                  final_rec
              in
              sprime_refcount_add env ~sref_link sp (Oid.Table.find counts final_oid);
              Oid.Table.replace sp_of final_oid sp)
            finals;
          let idx = Schema.hidden_index env.schema set ~rep_id:rep.Schema.rep_id ~field:None in
          let sources = ref [] in
          Heap_file.iter_oids src_file (fun o -> sources := o :: !sources);
          (* The S' objects and refcounts are already in place, so the final
             hidden-reference writes are a pure per-source rewrite: batch
             them page by page. *)
          batched_rewrite env ~set (List.rev !sources)
            ~transform:(fun source_oid r ->
              let desired =
                match Oid.Table.find_opt final_for source_oid with
                | Some final_oid -> Value.VRef (Oid.Table.find sp_of final_oid)
                | None -> Value.VNull
              in
              if Value.equal (value_or_null r idx) desired then None
              else Some (set_value_extending r idx desired)))

(* Objects of [source_set] whose [attr] currently references [target],
   answered from a level-1 inverted link when one exists. *)
let referencers_via_links env ~source_set ~attr target_oid =
  let node =
    List.find_opt
      (fun (n : Registry.node) ->
        n.Registry.step = attr
        && n.Registry.link_id <> None
        (* A link only answers inverse-reference queries when some Active
           path maintains it: a Building link is still partial, a Dropping
           one no longer maintained. *)
        && List.exists (rep_active env) n.Registry.passing)
      (Registry.roots env.registry source_set)
  in
  Option.map
    (fun node -> Link_object.members (membership_of env node target_oid))
    node

let repair env (rep : Schema.replication) source_oid =
  if is_pending env rep source_oid then refresh_terminal env rep source_oid

let refresh = refresh_terminal

(* Settle invalidation entries grouped by declaration, so each drain walks
   its sources in one physically ordered, page-batched pass rather than
   hashtable order. *)
let drain_keys env keys =
  let by_rep = Hashtbl.create 8 in
  List.iter
    (fun (rep_id, oid64) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_rep rep_id) in
      Hashtbl.replace by_rep rep_id (Oid.of_int64 oid64 :: prev))
    keys;
  Hashtbl.iter
    (fun rep_id oids ->
      match rep_of_id env rep_id with
      | Some rep when rep_live env rep -> refresh_batch env rep oids
      | Some _ | None ->
          List.iter
            (fun oid -> Hashtbl.remove env.pending (rep_id, Oid.to_int64 oid))
            oids)
    by_rep

let flush_pending env =
  drain_keys env (Hashtbl.fold (fun k () acc -> k :: acc) env.pending [])

(* Repair exactly the given invalidation keys (if still pending) — used by
   transaction abort to settle only the repair debt that transaction
   created, leaving other transactions' entries lazy. *)
let flush_keys env keys =
  drain_keys env (List.filter (fun key -> Hashtbl.mem env.pending key) keys)

let space_pages env = Store.total_pages env.store

(* ------------------------------------------------------------------ *)
(* Write-set estimation for transactional locking                      *)

(* The transaction manager must X-lock, up front, every data object a
   mutation will write — including objects reached only through
   propagation.  These helpers compute that footprint read-only, by
   walking the same structures the mutating entry points walk.  They are
   conservative supersets; link and S' objects are never returned because
   they are owned by (and guarded by the lock on) a data object. *)

let alive env oid =
  let hf = data_file env oid in
  Heap_file.exists hf oid

let chain_objects env (rep : Schema.replication) source_rec =
  List.map
    (fun (_, oid, _) -> oid)
    (forward_targets env (Registry.chain env.registry rep) source_rec)

(* Objects [attach_source]/[detach_source] will touch for a record of
   [set]: the forward-path chain of every declaration rooted there. *)
let write_set_attach env ~set record =
  List.concat_map
    (fun rep -> chain_objects env rep record)
    (Schema.replications_from env.schema set)
  |> List.sort_uniq Oid.compare

let write_set_delete env ~set oid =
  let record = read_record env oid in
  let chain = write_set_attach env ~set record in
  (* A separate path's S' object names its owning final object; dropping
     the last refcount rewrites the owner, which the forward walk may no
     longer reach. *)
  let owners =
    List.filter_map
      (fun (rep : Schema.replication) ->
        match rep.Schema.strategy with
        | Schema.Separate when not rep.Schema.options.Schema.collapse -> (
            let idx =
              Schema.hidden_index env.schema set ~rep_id:rep.Schema.rep_id
                ~field:None
            in
            match value_or_null record idx with
            | Value.VRef sp when alive env sp -> (
                match Record.field (read_record env sp) 1 with
                | Value.VRef owner -> Some owner
                | _ -> None)
            | _ -> None)
        | _ -> None)
      (Schema.replications_from env.schema set)
  in
  List.sort_uniq Oid.compare (chain @ owners)

(* Source objects whose hidden copies (or invalidation entries) a scalar
   update of [field] on this object will write. *)
let write_set_scalar env oid ~field =
  let record = read_record env oid in
  List.concat_map
    (fun (pair : Record.link) ->
      match Registry.link_kind env.registry pair.Record.link_id with
      | None | Some (Registry.L_sref _) -> []
      | Some (Registry.L_collapsed node_id) ->
          let node = Registry.node env.registry node_id in
          let interested =
            List.exists
              (fun (term : Registry.terminal) ->
                match term.Registry.kind with
                | Registry.K_collapsed cid ->
                    cid = pair.Record.link_id
                    && List.mem_assoc field term.Registry.fields
                | Registry.K_inplace | Registry.K_separate _ -> false)
              node.Registry.terminals
          in
          if interested then
            Link_object.members
              (fst (read_membership env ~link_id:pair.Record.link_id record))
          else []
      | Some (Registry.L_path node_id) ->
          let node = Registry.node env.registry node_id in
          let interested =
            List.exists
              (fun (term : Registry.terminal) ->
                term.Registry.kind = Registry.K_inplace
                && List.mem_assoc field term.Registry.fields)
              node.Registry.terminals
          in
          if interested then sources_of env node oid else [])
    record.Record.links
  |> List.sort_uniq Oid.compare

(* Source sets of every declaration whose path uses [set].[field] as a
   step.  A reference update restructures inverted paths, touching an
   unbounded subset of those sources — the caller escalates to set-level
   exclusive locks instead of enumerating them. *)
let ref_update_scope env ~set ~field =
  let elem_type = (Schema.set_type env.schema set).Ty.tname in
  List.filter_map
    (fun (node : Registry.node) ->
      if node.Registry.step = field && node.Registry.from_type = elem_type then
        Some node.Registry.source_set
      else None)
    (Registry.nodes env.registry)
  |> List.sort_uniq compare

(* The target of a moved reference plus everything reachable from it along
   the registry subtree rooted at the step — the objects
   [ensure_deeper]/[cascade_off] may rewrite. *)
let downstream env (node : Registry.node) target_oid =
  let rec walk (node : Registry.node) oid acc =
    if not (alive env oid) then acc
    else
      let acc = oid :: acc in
      let r = read_record env oid in
      List.fold_left
        (fun acc (child : Registry.node) ->
          match
            deref env ~from_type:child.Registry.from_type r
              child.Registry.step
          with
          | Some next -> walk child next acc
          | None -> acc)
        acc
        (Registry.children env.registry node)
  in
  walk node target_oid []

let write_set_ref_targets env ~set ~field targets =
  let elem_type = (Schema.set_type env.schema set).Ty.tname in
  List.concat_map
    (fun (node : Registry.node) ->
      if node.Registry.step = field && node.Registry.from_type = elem_type then
        List.concat_map (fun t -> downstream env node t) targets
      else [])
    (Registry.nodes env.registry)
  |> List.sort_uniq Oid.compare
