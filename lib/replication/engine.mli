(** The field-replication engine.

    Owns every replication-specific structure — link objects / inverted
    paths, hidden fields, S' files, reference counts — and keeps them
    consistent as the database mutates.  The object engine (lib/core) calls
    in after each data mutation:

    - {!build} when a [replicate] declaration is added (bulk construction,
      link and S' files laid out in the same physical order as the sets they
      invert — paper §4.1, §5);
    - {!on_insert} / {!on_delete} for source-set membership maintenance
      (paper §4.1.1);
    - {!on_scalar_update} to propagate a changed data field to every
      replicated copy (paper §4.1.3, §5.2);
    - {!on_ref_update} when a reference attribute changes anywhere on a
      path, restructuring the inverted path and refreshing affected sources
      (paper §4.1.2).

    The engine is strategy-complete: in-place, separate, collapsed inverted
    paths (§4.3.3) and small-link elimination (§4.3.1) all live behind the
    same entry points. *)

module Oid = Fieldrep_storage.Oid
module Schema = Fieldrep_model.Schema
module Record = Fieldrep_model.Record

type env = {
  schema : Schema.t;
  mutable registry : Registry.t;
      (** recompiled by the caller whenever declarations change *)
  store : Store.t;
  file_of_set : string -> Fieldrep_storage.Heap_file.t;
  file_of_oid : Oid.t -> Fieldrep_storage.Heap_file.t;
      (** resolve any *data* OID to its heap file *)
  mutable on_hidden_update :
    string -> Oid.t -> before:Record.t -> after:Record.t -> unit;
      (** [on_hidden_update set oid]: a source object's hidden fields
          changed (the caller maintains indexes built on replicated data).
          Mutable so tests can observe propagation order. *)
  mutable batching : bool;
      (** When set (the default), propagation fan-outs are sorted by
          physical OID, grouped by page, and each page's hidden-field
          writes happen under one pin pair — the access-layer half of the
          paper's keep-links-in-referenced-set-order argument.  Clearing it
          restores the per-object reference path (one read pin + one write
          pin per source), used as the comparison baseline. *)
  pending : (int * int64, unit) Hashtbl.t;
      (** the lazy-propagation invalidation table: (rep_id, packed source
          OID) pairs whose hidden copies are stale.  Kept in memory, like
          the special invalidation locks of POSTGRES's caching schemes. *)
}

val make_env :
  schema:Schema.t ->
  store:Store.t ->
  file_of_set:(string -> Fieldrep_storage.Heap_file.t) ->
  file_of_oid:(Oid.t -> Fieldrep_storage.Heap_file.t) ->
  ?on_hidden_update:(string -> Oid.t -> before:Record.t -> after:Record.t -> unit) ->
  unit ->
  env
(** Compiles the registry from the schema's current declarations. *)

val recompile : env -> unit
(** Refresh [env.registry] after the schema gained a declaration. *)

val build : env -> Schema.replication -> unit
(** Bulk-build the structures of a declaration over existing data.  Shared
    links already materialised by earlier declarations are reused, new link
    levels and S' files are created in target-set physical order, hidden
    fields are (re)computed for every source object. *)

val on_insert : env -> set:string -> Oid.t -> unit
(** The object was just inserted (its references already stored).  Attaches
    it to every replication path rooted at [set] and fills its hidden
    fields. *)

val on_delete : env -> set:string -> Oid.t -> unit
(** Must be called *before* the heap delete.  Detaches the object from
    paths rooted at [set].  Raises [Invalid_argument] if the object is still
    referenced along some replication path (it is an intermediate or final
    object with live link memberships), mirroring the paper's assumption
    that such objects are deleted only when unreferenced. *)

val on_scalar_update :
  env -> set:string -> Oid.t -> field:string -> Fieldrep_model.Value.t -> unit
(** Called *after* the object's own record was rewritten with the new value.
    Uses the object's (link-OID, link-ID) pairs to decide whether the update
    must be propagated, and propagates it: through the inverted path to
    hidden copies for in-place paths, to the shared S' object for separate
    paths. *)

val on_ref_update :
  env ->
  set:string ->
  Oid.t ->
  field:string ->
  old_value:Fieldrep_model.Value.t ->
  new_value:Fieldrep_model.Value.t ->
  unit
(** Called *after* the record was rewritten.  Handles all positions of the
    changed object: a source object re-attaches to the new chain; an
    intermediate object moves between link objects at the next level (with
    cascading on-path/off-path transitions) and every source object it
    carries gets its hidden values or S'-references recomputed. *)

val is_pending : env -> Schema.replication -> Oid.t -> bool
(** Is this source object's hidden data stale under lazy propagation? *)

val repair : env -> Schema.replication -> Oid.t -> unit
(** Recompute the source's hidden copies if (and only if) they are stale,
    clearing the invalidation entry: the read-side half of lazy
    propagation. *)

val refresh : env -> Schema.replication -> Oid.t -> unit
(** Unconditionally recompute one source object's replicated state (hidden
    copies or S' reference) from the current forward path, clearing any
    pending invalidation.  Idempotent — a no-op when the stored state
    already matches.  This is the repair primitive the scrub subsystem
    drives, and the operation a replayed [Scrub_repair] WAL record
    re-runs. *)

(** {1 Online reconfiguration}

    Per-source primitives driven by the background-maintenance jobs
    (lib/maint).  Both are idempotent, so a crash-recovered job can replay
    a quantum it had already applied.  The engine's mutation hooks consult
    {!Schema.rep_state}: [Building] declarations receive the full catch-up
    stream (adds, removes, refreshes), [Dropping] ones only removals. *)

val backfill_source : env -> Schema.replication -> Oid.t -> unit
(** Attach one source object of a [Building] declaration and fill its
    hidden state — the backfill half of online [replicate].  Converges when
    the catch-up trigger already attached the object. *)

val teardown_source : env -> Schema.replication -> Oid.t -> unit
(** Remove one source object's contribution to a [Dropping] declaration:
    memberships on link levels no live path shares, the S' reference count,
    the hidden slots (nulled).  The object itself stays. *)

val link_active : env -> int -> bool
(** Is this link ID maintained by some [Active] declaration — i.e. is its
    derived state complete enough to audit or repair against?  [Building]
    links are legitimately partial, [Dropping] links legitimately stale;
    the invariant checker and scrubber skip both. *)

val rep_of_id : env -> int -> Schema.replication option
(** Look up a non-[Dropped] declaration by ID. *)

val gc_dead_derived : env -> unit
(** Unbind (and delete) link/S' files no surviving declaration reaches.
    Must run when a teardown completes: a later re-replication of the same
    path reuses the dropped declaration's link IDs, and {!build} would
    mistake the stale empty files for already-built state. *)

val flush_pending : env -> unit
(** Repair every invalidated source (e.g. before an integrity audit or a
    bulk export). *)

val pending_count : env -> int

val pending_keys : env -> (int * int64) list
(** Raw invalidation-table keys ((rep id, source OID) pairs) — snapshot
    taken at transaction begin so abort can settle only its own debt. *)

val flush_keys : env -> (int * int64) list -> unit
(** Repair exactly the given keys, where still pending. *)

val referencers_via_links :
  env -> source_set:string -> attr:string -> Oid.t -> Oid.t list option
(** Objects of [source_set] whose reference attribute [attr] points at the
    target, answered directly from a level-1 inverted-path link when some
    replication declaration maintains one ([None] otherwise).  This is the
    paper's §8 observation that inverted paths double as inverse functions
    / bidirectional reference attributes. *)

val sources_of : env -> Registry.node -> Oid.t -> Oid.t list
(** All source-set objects currently reaching the given target object
    through the node's inverted sub-path, in physical order.  Exposed for
    tests and the invariant checker. *)

val space_pages : env -> int
(** Pages consumed by link and S' files. *)

(** {1 Write-set estimation}

    Read-only estimates of the data objects a mutation's propagation will
    write, used by the transaction manager to acquire exclusive locks {e
    before} executing anything.  Conservative supersets; link and S'
    objects are excluded because they are guarded by the data object that
    owns them. *)

val write_set_attach : env -> set:string -> Fieldrep_model.Record.t -> Oid.t list
(** Forward-path objects that attaching (inserting) a record of [set]
    will touch. *)

val write_set_delete : env -> set:string -> Oid.t -> Oid.t list
(** Forward-path objects plus any S' owner that detaching (deleting) the
    object will touch. *)

val write_set_scalar : env -> Oid.t -> field:string -> Oid.t list
(** Source objects whose hidden copies (or lazy-invalidation entries) a
    scalar update of [field] will write — the inverted-path fan-out. *)

val ref_update_scope : env -> set:string -> field:string -> string list
(** Source sets of declarations whose path steps through [set].[field]; a
    reference update escalates to set-level exclusive locks on these. *)

val write_set_ref_targets :
  env -> set:string -> field:string -> Oid.t list -> Oid.t list
(** Old/new reference targets plus everything reachable from them along
    the registry subtrees rooted at the step. *)

val sprime_field_offset : int
(** Value-array index of the first replicated field inside an S' object
    (slot 0 is the reference count, slot 1 the owning final object). *)
