module Listx = Fieldrep_util.Listx
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path
module Ty = Fieldrep_model.Ty

type terminal_kind = K_inplace | K_separate of int | K_collapsed of int

type terminal = {
  rep : Schema.replication;
  fields : (string * Ty.scalar) list;
  kind : terminal_kind;
}

type node = {
  node_id : int;
  parent : int option;
  source_set : string;
  step : string;
  prefix : string list;
  level : int;
  from_type : string;
  to_type : string;
  link_id : int option;
  terminals : terminal list;
  children : int list;
  passing : Schema.replication list;
}

type link_kind = L_path of int | L_sref of int | L_collapsed of int

type t = {
  node_arr : node array;
  root_tbl : (string, int list) Hashtbl.t;
  by_link : (int, link_kind) Hashtbl.t;
  by_rep : (int, int list) Hashtbl.t;  (* rep_id -> node chain *)
  max_link : int;
}

(* Mutable builder mirror of [node]. *)
type bnode = {
  b_id : int;
  b_parent : int option;
  b_set : string;
  b_step : string;
  b_prefix : string list;
  b_level : int;
  b_from : string;
  b_to : string;
  mutable b_link : int option;
  mutable b_terminals : terminal list;
  mutable b_children : int list;
  mutable b_passing : Schema.replication list;
}

let max_link_id_space = 255

let compile schema =
  let bnodes : bnode array ref = ref [||] in
  let push b = bnodes := Array.append !bnodes [| b |] in
  let roots : (string, int list) Hashtbl.t = Hashtbl.create 8 in
  let by_link = Hashtbl.create 16 in
  let by_rep = Hashtbl.create 16 in
  let next_link = ref 1 in
  let alloc_link kind =
    if !next_link > max_link_id_space then
      invalid_arg "Registry: link-ID space exhausted (255 links)";
    let id = !next_link in
    incr next_link;
    Hashtbl.replace by_link id kind;
    id
  in
  let find_child parent_children step =
    List.find_opt (fun i -> (!bnodes).(i).b_step = step) parent_children
  in
  List.iter
    (fun (rep : Schema.replication) ->
      let path = rep.Schema.rpath in
      let resolved = Schema.resolve_path schema path in
      let n = Path.level path in
      let collapse = rep.Schema.options.Schema.collapse in
      if collapse && n <> 2 then
        invalid_arg
          (Printf.sprintf
             "Registry: collapsed inverted paths are supported for 2-level \
              paths only (%s has level %d)"
             (Path.to_string path) n);
      let types = Array.of_list resolved.Schema.type_chain in
      (* Walk/extend the trie. *)
      let chain = ref [] in
      let parent = ref None in
      List.iteri
        (fun i step ->
          let level = i + 1 in
          let siblings =
            match !parent with
            | None -> Option.value ~default:[] (Hashtbl.find_opt roots path.Path.source_set)
            | Some p -> (!bnodes).(p).b_children
          in
          let id =
            match find_child siblings step with
            | Some id -> id
            | None ->
                let id = Array.length !bnodes in
                let prefix =
                  match !parent with
                  | None -> [ step ]
                  | Some p -> (!bnodes).(p).b_prefix @ [ step ]
                in
                push
                  {
                    b_id = id;
                    b_parent = !parent;
                    b_set = path.Path.source_set;
                    b_step = step;
                    b_prefix = prefix;
                    b_level = level;
                    b_from = types.(i);
                    b_to = types.(i + 1);
                    b_link = None;
                    b_terminals = [];
                    b_children = [];
                    b_passing = [];
                  };
                (match !parent with
                | None ->
                    Hashtbl.replace roots path.Path.source_set (siblings @ [ id ])
                | Some p -> (!bnodes).(p).b_children <- siblings @ [ id ]);
                id
          in
          let b = (!bnodes).(id) in
          b.b_passing <- b.b_passing @ [ rep ];
          (* Does this path need this level inverted? *)
          let needs_link =
            (not collapse)
            &&
            match rep.Schema.strategy with
            | Schema.Inplace -> true
            | Schema.Separate -> level <= n - 1
          in
          if needs_link && b.b_link = None then
            b.b_link <- Some (alloc_link (L_path id));
          chain := id :: !chain;
          parent := Some id)
        path.Path.steps;
      let chain = List.rev !chain in
      Hashtbl.replace by_rep rep.Schema.rep_id chain;
      let final_id = Listx.last_exn ~what:"Registry.compile: empty chain" chain in
      let final = (!bnodes).(final_id) in
      let kind =
        if collapse then K_collapsed (alloc_link (L_collapsed final_id))
        else
          match rep.Schema.strategy with
          | Schema.Inplace -> K_inplace
          | Schema.Separate -> K_separate (alloc_link (L_sref final_id))
      in
      final.b_terminals <-
        final.b_terminals @ [ { rep; fields = resolved.Schema.terminal_fields; kind } ])
    (Schema.all_replications schema);
  (* Dropped declarations were replayed above purely for allocation
     stability (their successors must get the same node and link IDs on
     every compile).  Now erase them from the logical view: strip them from
     [passing] and [terminals], drop their terminal link IDs, and turn
     nodes no live path uses into inert stubs ([link_id = None]), so the
     engine's membership maintenance no-ops on them. *)
  let dropped rep =
    Schema.rep_state schema rep.Schema.rep_id = Schema.Dropped
  in
  Array.iter
    (fun b ->
      List.iter
        (fun term ->
          if dropped term.rep then
            match term.kind with
            | K_inplace -> ()
            | K_separate id | K_collapsed id -> Hashtbl.remove by_link id)
        b.b_terminals;
      b.b_terminals <-
        List.filter (fun term -> not (dropped term.rep)) b.b_terminals;
      b.b_passing <- List.filter (fun rep -> not (dropped rep)) b.b_passing;
      if b.b_passing = [] then begin
        (match b.b_link with Some id -> Hashtbl.remove by_link id | None -> ());
        b.b_link <- None
      end)
    !bnodes;
  List.iter
    (fun (rep : Schema.replication) ->
      if dropped rep then Hashtbl.remove by_rep rep.Schema.rep_id)
    (Schema.all_replications schema);
  let node_arr =
    Array.map
      (fun b ->
        {
          node_id = b.b_id;
          parent = b.b_parent;
          source_set = b.b_set;
          step = b.b_step;
          prefix = b.b_prefix;
          level = b.b_level;
          from_type = b.b_from;
          to_type = b.b_to;
          link_id = b.b_link;
          terminals = b.b_terminals;
          children = b.b_children;
          passing = b.b_passing;
        })
      !bnodes
  in
  { node_arr; root_tbl = roots; by_link; by_rep; max_link = !next_link - 1 }

let node t id = t.node_arr.(id)
let nodes t = Array.to_list t.node_arr

let roots t set =
  Option.value ~default:[] (Hashtbl.find_opt t.root_tbl set)
  |> List.map (fun id -> t.node_arr.(id))

let children t n = List.map (fun id -> t.node_arr.(id)) n.children
let parent t n = Option.map (fun id -> t.node_arr.(id)) n.parent
let link_kind t id = Hashtbl.find_opt t.by_link id
let max_link_id t = t.max_link

let chain t (rep : Schema.replication) =
  match Hashtbl.find_opt t.by_rep rep.Schema.rep_id with
  | Some ids -> List.map (fun id -> t.node_arr.(id)) ids
  | None -> raise Not_found

let terminal_of t rep =
  let nodes = chain t rep in
  let final = Listx.last_exn ~what:"Registry.terminal_of: empty chain" nodes in
  let term =
    List.find
      (fun term -> term.rep.Schema.rep_id = rep.Schema.rep_id)
      final.terminals
  in
  (final, term)
