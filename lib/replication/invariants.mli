(** Whole-database consistency checking for replication structures.

    Recomputes from scratch what every link object, hidden field, S' object
    and reference count *should* contain — by scanning the data sets and
    walking forward references — and compares with what is actually stored.
    Test suites call this after every mutation pattern; it is the ground
    truth that update propagation (paper §4, §5) preserves consistency. *)

val check : Engine.env -> unit
(** Raises [Failure] describing the first violation. *)

val errors : Engine.env -> string list
(** All violations (empty list = consistent). *)

val check_all : Engine.env -> unit
(** Alias of {!check} under the name recovery code reads naturally:
    the final step of [Db.recover] re-verifies every invariant. *)
