(** Per-transaction bookkeeping: identity, life-cycle state, the undo list
    of before-images (captured at first touch), slots pinned by deletes,
    and per-transaction cost accounting.

    The transaction manager proper lives in [Db] (which owns the lock
    manager, the WAL and the object engine); this module is the passive
    record both sides share. *)

type state = Active | Committed | Aborted

type undo_image = {
  u_set : string;
  u_oid : Fieldrep_storage.Oid.t;
  u_present : bool;
      (** [false]: the object was created by this transaction; undo deletes
          it instead of restoring fields. *)
  u_values : Fieldrep_model.Value.t list;  (** user fields, schema order *)
}

type t

val make : int -> t
val id : t -> int
val state : t -> state
val is_active : t -> bool

val touched : t -> set:string -> Fieldrep_storage.Oid.t -> bool
(** Has a before-image already been captured for this object? *)

val record_touch : t -> set:string -> Fieldrep_storage.Oid.t -> undo_image -> unit
(** First touch wins; later touches of the same object are ignored. *)

val undo_images : t -> undo_image list
(** Newest first — already in rollback order. *)

val add_tombstone : t -> set:string -> Fieldrep_storage.Oid.t -> unit
val tombstones : t -> (string * Fieldrep_storage.Oid.t) list
val charge_io : t -> int -> unit
val io : t -> int
val bump_ops : t -> unit
val ops : t -> int

val begun : t -> bool
(** Has this transaction logged its [Txn_begin] record yet?  Begin records
    are written lazily, on the first logged operation, so read-only
    transactions leave no trace in the log. *)

val mark_begun : t -> unit

val pending_snapshot : t -> (int * int64) list
(** Lazy-invalidation table keys pending when the transaction began;
    entries beyond this set are repair debt the transaction created and
    must settle if it aborts. *)

val set_pending_snapshot : t -> (int * int64) list -> unit

(**/**)

val set_state : t -> state -> unit
