(** Hierarchical lock manager: strict two-phase locking over a two-level
    set → object hierarchy.

    Readers and writers declare intent at the set level ([IS]/[IX]) and
    lock individual objects [S]/[X]; whole-set operations (scans, lock
    escalation for reference updates) take [S]/[X] on the set itself, which
    conflicts with any intention mode.  Upgrades combine via a least upper
    bound (no SIX mode: [S]+[IX] escalates to [X]).

    Locks are granted immediately or not at all — this is a cooperative
    single-threaded engine, so instead of parking a thread, a conflicting
    request raises {!Would_block} and the caller retries the whole
    operation later (nothing has executed yet: lock sets are acquired up
    front).  Blocked requests are remembered as wait-for edges; a request
    that would close a cycle raises {!Deadlock} naming the requester as the
    victim, which is deterministic under a deterministic scheduler.

    Strict 2PL: locks are only ever released by {!release_all} at commit or
    abort, which is what makes the commit order a valid serial order. *)

type mode = IS | IX | S | X

type resource = Set of string | Obj of Fieldrep_storage.Oid.t

exception Would_block of { txn : int; holders : int list }
exception Deadlock of { victim : int; cycle : int list }

type t

val create : ?stats:Fieldrep_storage.Stats.t -> unit -> t
(** [stats], when given, receives [lock_waits] and [deadlocks] counts. *)

val acquire : t -> txn:int -> resource -> mode -> unit
(** Grant or upgrade, or raise {!Would_block} / {!Deadlock}.  Granted locks
    are held until {!release_all}. *)

val grant : t -> txn:int -> resource -> mode -> unit
(** Record a lock without conflict checking — for freshly allocated OIDs no
    other transaction can have seen. *)

val holds : t -> txn:int -> resource -> mode -> bool

val release_all : t -> txn:int -> unit
(** Drop every lock and any pending wait-for edge of [txn]. *)

val held_count : t -> txn:int -> int
val active_locks : t -> int
val compatible : mode -> mode -> bool
val covers : mode -> mode -> bool
val lub : mode -> mode -> mode
val mode_name : mode -> string
val resource_name : resource -> string
val pp : Format.formatter -> t -> unit
