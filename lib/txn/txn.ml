module Oid = Fieldrep_storage.Oid
module Value = Fieldrep_model.Value

type state = Active | Committed | Aborted

(* A before-image, captured the first time a transaction touches an object
   for writing.  [present = false] means the object did not exist before the
   transaction (it was created by it), so undo deletes it. *)
type undo_image = {
  u_set : string;
  u_oid : Oid.t;
  u_present : bool;
  u_values : Value.t list;
}

type t = {
  id : int;
  mutable state : state;
  mutable undo : undo_image list;  (* newest first *)
  touched : (string * string, unit) Hashtbl.t;  (* (set, oid) first-touch *)
  mutable tombstones : (string * Oid.t) list;
      (* slots pinned by this txn's deletes, resolved at commit/abort *)
  mutable ops : int;
  mutable io : int;  (* physical page I/O charged to this txn *)
  mutable begun : bool;  (* has a Txn_begin record been logged? *)
  mutable snapshot : (int * int64) list;
      (* lazy-invalidation keys pending at begin: entries beyond this set
         are repair debt this transaction created *)
}

let make id =
  {
    id;
    state = Active;
    undo = [];
    touched = Hashtbl.create 8;
    tombstones = [];
    ops = 0;
    io = 0;
    begun = false;
    snapshot = [];
  }

let id t = t.id
let state t = t.state
let is_active t = t.state = Active

let key set oid = (set, Oid.to_string oid)

let touched t ~set oid = Hashtbl.mem t.touched (key set oid)

let record_touch t ~set oid image =
  if not (touched t ~set oid) then begin
    Hashtbl.replace t.touched (key set oid) ();
    t.undo <- image :: t.undo
  end

let undo_images t = t.undo
let add_tombstone t ~set oid = t.tombstones <- (set, oid) :: t.tombstones
let tombstones t = t.tombstones
let charge_io t n = t.io <- t.io + n
let io t = t.io
let bump_ops t = t.ops <- t.ops + 1
let ops t = t.ops
let set_state t s = t.state <- s
let begun t = t.begun
let mark_begun t = t.begun <- true
let pending_snapshot t = t.snapshot
let set_pending_snapshot t keys = t.snapshot <- keys
