module Oid = Fieldrep_storage.Oid
module Stats = Fieldrep_storage.Stats
module Lockdep = Fieldrep_util.Lockdep

type mode = IS | IX | S | X

type resource = Set of string | Obj of Oid.t

exception Would_block of { txn : int; holders : int list }
exception Deadlock of { victim : int; cycle : int list }

let mode_name = function IS -> "IS" | IX -> "IX" | S -> "S" | X -> "X"

let resource_name = function
  | Set s -> Printf.sprintf "set:%s" s
  | Obj oid -> Printf.sprintf "obj:%s" (Oid.to_string oid)

(* Classic multi-granularity compatibility (no SIX: the lub of S and IX is
   modelled as X, which is safe, merely coarser). *)
let compatible a b =
  match (a, b) with
  | IS, (IS | IX | S) | (IX | S), IS -> true
  | IX, IX -> true
  | S, S -> true
  | _, X | X, _ -> false
  | IX, S | S, IX -> false

(* Does holding [held] already satisfy a request for [want]? *)
let covers held want =
  match (held, want) with
  | X, _ -> true
  | S, (S | IS) -> true
  | IX, (IX | IS) -> true
  | IS, IS -> true
  | _ -> false

(* Least mode at least as strong as both (upgrade target). *)
let lub a b =
  if covers a b then a
  else if covers b a then b
  else match (a, b) with IS, IX | IX, IS -> IX | _ -> X

type t = {
  table : (resource, (int, mode) Hashtbl.t) Hashtbl.t;
  held : (int, resource list ref) Hashtbl.t;
  waiting : (int, resource * mode) Hashtbl.t;
  stats : Stats.t option;
}

let create ?stats () =
  {
    table = Hashtbl.create 256;
    held = Hashtbl.create 16;
    waiting = Hashtbl.create 16;
    stats;
  }

let holders_of t resource =
  match Hashtbl.find_opt t.table resource with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 4 in
      Hashtbl.replace t.table resource h;
      h

(* Transactions other than [txn] holding a mode incompatible with [want]. *)
let conflicts holders txn want =
  Hashtbl.fold
    (fun other m acc ->
      if other <> txn && not (compatible m want) then other :: acc else acc)
    holders []

(* Wait-for edges of a waiting transaction: the current holders blocking
   its pending request.  Recomputed from live state on every check so
   released locks never leave stale edges. *)
let blockers_of t w =
  match Hashtbl.find_opt t.waiting w with
  | None -> []
  | Some (resource, mode) -> (
      match Hashtbl.find_opt t.table resource with
      | None -> []
      | Some holders ->
          let want =
            match Hashtbl.find_opt holders w with
            | Some cur -> lub cur mode
            | None -> mode
          in
          conflicts holders w want)

(* Is [start] reachable from itself through wait-for edges?  Returns the
   cycle (as a txn list) when it is. *)
let find_cycle t start =
  let visited = Hashtbl.create 8 in
  let rec dfs path txn =
    if txn = start && path <> [] then Some (List.rev path)
    else if Hashtbl.mem visited txn then None
    else begin
      Hashtbl.replace visited txn ();
      let nexts = blockers_of t txn in
      List.fold_left
        (fun acc n -> match acc with Some _ -> acc | None -> dfs (n :: path) n)
        None nexts
    end
  in
  dfs [] start

(* Lockdep pairing: one [Txn_lock] push per transaction (its first grant),
   popped by [release_all]; later grants only record edges, since they get
   no release of their own. *)
let note_held t txn resource =
  match Hashtbl.find_opt t.held txn with
  | Some l ->
      Lockdep.note Lockdep.Txn_lock;
      if not (List.mem resource !l) then l := resource :: !l
  | None ->
      Lockdep.acquire Lockdep.Txn_lock;
      Hashtbl.replace t.held txn (ref [ resource ])

let acquire t ~txn resource mode =
  let holders = holders_of t resource in
  let cur = Hashtbl.find_opt holders txn in
  match cur with
  | Some m when covers m mode -> ()
  | _ -> (
      let want = match cur with Some m -> lub m mode | None -> mode in
      match conflicts holders txn want with
      | [] ->
          Hashtbl.replace holders txn want;
          note_held t txn resource;
          Hashtbl.remove t.waiting txn
      | blocking ->
          (* Count a wait only when the request transitions into blocking on
             this resource, not on every retry of the same request. *)
          let already =
            match Hashtbl.find_opt t.waiting txn with
            | Some (r, m) -> r = resource && m = mode
            | None -> false
          in
          Hashtbl.replace t.waiting txn (resource, mode);
          if not already then
            Option.iter (fun s -> Stats.bump s Stats.Lock_waits) t.stats;
          (match find_cycle t txn with
          | Some cycle ->
              Hashtbl.remove t.waiting txn;
              Option.iter (fun s -> Stats.bump s Stats.Deadlocks) t.stats;
              raise (Deadlock { victim = txn; cycle })
          | None -> ());
          raise (Would_block { txn; holders = blocking }))

(* Grant without checking conflicts: used for freshly allocated OIDs, which
   no other transaction can possibly have seen. *)
let grant t ~txn resource mode =
  let holders = holders_of t resource in
  let want =
    match Hashtbl.find_opt holders txn with Some m -> lub m mode | None -> mode
  in
  Hashtbl.replace holders txn want;
  note_held t txn resource

let holds t ~txn resource mode =
  match Hashtbl.find_opt t.table resource with
  | None -> false
  | Some holders -> (
      match Hashtbl.find_opt holders txn with
      | Some m -> covers m mode
      | None -> false)

let release_all t ~txn =
  (match Hashtbl.find_opt t.held txn with
  | Some l ->
      Lockdep.release Lockdep.Txn_lock;
      List.iter
        (fun resource ->
          match Hashtbl.find_opt t.table resource with
          | Some holders ->
              Hashtbl.remove holders txn;
              if Hashtbl.length holders = 0 then Hashtbl.remove t.table resource
          | None -> ())
        !l
  | None -> ());
  Hashtbl.remove t.held txn;
  Hashtbl.remove t.waiting txn

let held_count t ~txn =
  match Hashtbl.find_opt t.held txn with Some l -> List.length !l | None -> 0

let active_locks t = Hashtbl.length t.table

let pp fmt t =
  Hashtbl.iter
    (fun resource holders ->
      Format.fprintf fmt "%s:" (resource_name resource);
      Hashtbl.iter
        (fun txn m -> Format.fprintf fmt " %d=%s" txn (mode_name m))
        holders;
      Format.fprintf fmt "@.")
    t.table
