module Db = Fieldrep.Db
module Heap_file = Fieldrep_storage.Heap_file
module Pager = Fieldrep_storage.Pager
module Oid = Fieldrep_storage.Oid
module Key = Fieldrep_btree.Key
module Value = Fieldrep_model.Value
module Record = Fieldrep_model.Record
module Schema = Fieldrep_model.Schema

type access = Index_scan of string | File_scan

type retrieve_plan = {
  access : access;
  join_counts : (string * int) list;
}

let key_of_value = function
  | Value.VInt v -> Some (Key.Int v)
  | Value.VString s -> Some (Key.String s)
  | Value.VRef _ | Value.VNull -> None

(* An index is usable when the predicate's bounds translate to keys; an
   open bound needs a key-space extreme, which only integers have. *)
let key_bounds (p : Ast.predicate) =
  let lo =
    match p.Ast.lo with
    | Some v -> key_of_value v
    | None -> Some (Key.Int min_int)
  in
  let hi =
    match p.Ast.hi with
    | Some v -> key_of_value v
    | None -> Some (Key.Int max_int)
  in
  match (lo, hi) with
  | Some (Key.Int _ as a), Some (Key.Int _ as b) -> Some (a, b)
  | Some (Key.String _ as a), Some (Key.String _ as b) -> Some (a, b)
  | Some _, Some _ | None, _ | _, None -> None

(* Predicates may target a plain field or a dotted path expression; a path
   predicate can use an index built on the replicated path (paper §3.3.4:
   "queries that require an associative lookup on the path"). *)
let index_field_of ~set (p : Ast.predicate) =
  if String.contains p.Ast.pfield '.' then set ^ "." ^ p.Ast.pfield else p.Ast.pfield

let choose_access db ~set (where : Ast.predicate option) =
  match where with
  | None -> File_scan
  | Some p -> (
      match (Db.find_index db ~set ~field:(index_field_of ~set p), key_bounds p) with
      | Some def, Some _ -> Index_scan def.Schema.iname
      | Some _, None | None, _ -> File_scan)

let value_in_range (p : Ast.predicate) v =
  let ge = match p.Ast.lo with None -> true | Some lo -> Value.compare v lo >= 0 in
  let le = match p.Ast.hi with None -> true | Some hi -> Value.compare v hi <= 0 in
  (match v with Value.VNull -> false | Value.VInt _ | Value.VString _ | Value.VRef _ -> true)
  && ge && le

let explain_retrieve db (q : Ast.retrieve) =
  {
    access = choose_access db ~set:q.Ast.from_set q.Ast.where;
    join_counts =
      List.map
        (fun expr ->
          let joins =
            if String.contains expr '.' then
              Db.deref_would_join db ~set:q.Ast.from_set expr
            else 0
          in
          (expr, joins))
        q.Ast.projections;
  }

(* Feed every selected (oid, record) to [f].  Index scans visit in key
   order; file scans in physical order. *)
let iter_selected db ~set (where : Ast.predicate option) f =
  match choose_access db ~set where with
  | Index_scan index ->
      (* choose_access only picks an index scan off a bounded predicate. *)
      let lo, hi =
        match Option.map key_bounds where with
        | Some (Some bounds) -> bounds
        | Some None | None -> invalid_arg "Exec: index plan without key bounds"
      in
      (* Collect first: callbacks may mutate the tree's pages' residency. *)
      let oids = Db.index_range db ~index ~lo ~hi ~init:[] ~f:(fun acc _ oid -> oid :: acc) in
      List.iter (fun oid -> f oid (Db.get db ~set oid)) (List.rev oids)
  | File_scan ->
      Db.scan db ~set (fun oid record ->
          let keep =
            match where with
            | None -> true
            | Some p ->
                let v =
                  if String.contains p.Ast.pfield '.' then
                    Db.deref_record ~oid db ~set record p.Ast.pfield
                  else Db.field_value db ~set record p.Ast.pfield
                in
                value_in_range p v
          in
          if keep then f oid record)

let matching_oids db ~set where =
  let acc = ref [] in
  iter_selected db ~set where (fun oid _ -> acc := oid :: !acc);
  List.rev !acc

type retrieve_result = { rows : int; output_file : int; output_pages : int }

let project db ~set ~oid record projections =
  List.map
    (fun expr ->
      if String.contains expr '.' then Db.deref_record ~oid db ~set record expr
      else Db.field_value db ~set record expr)
    projections

let retrieve db (q : Ast.retrieve) =
  let set = q.Ast.from_set in
  let out = Heap_file.create (Db.pager db) in
  let rows = ref 0 in
  iter_selected db ~set q.Ast.where (fun oid record ->
      let values = project db ~set ~oid record q.Ast.projections in
      let tuple = Record.make ~type_tag:0 (Array.of_list values) in
      ignore (Heap_file.insert out (Record.encode tuple));
      incr rows);
  { rows = !rows; output_file = Heap_file.file_id out; output_pages = Heap_file.page_count out }

let drop_output db file = Pager.delete_file (Db.pager db) file

let retrieve_values db q =
  let result = retrieve db q in
  let out = Heap_file.attach (Db.pager db) ~file:result.output_file in
  let rows = ref [] in
  Heap_file.iter out (fun _ bytes ->
      rows := Array.to_list (Record.decode bytes).Record.values :: !rows);
  drop_output db result.output_file;
  List.rev !rows

(* ------------------------------------------------------------------ *)
(* Aggregates and ordering                                             *)

type aggregate = Count | Sum | Avg | Min | Max

type agg_state = {
  mutable count : int;
  mutable sum : int;
  mutable vmin : Value.t;
  mutable vmax : Value.t;
}

let eval_expr db ~set ~oid record expr =
  if String.contains expr '.' then Db.deref_record ~oid db ~set record expr
  else Db.field_value db ~set record expr

let aggregate db ~set ~where specs =
  let states = List.map (fun _ -> { count = 0; sum = 0; vmin = Value.VNull; vmax = Value.VNull }) specs in
  iter_selected db ~set where (fun oid record ->
      List.iter2
        (fun (agg, expr) st ->
          match eval_expr db ~set ~oid record expr with
          | Value.VNull -> ()
          | v ->
              st.count <- st.count + 1;
              (match (agg, v) with
              | (Sum | Avg), Value.VInt i -> st.sum <- st.sum + i
              | (Sum | Avg), _ ->
                  invalid_arg
                    (Printf.sprintf "Exec.aggregate: sum/avg over non-integer %s" expr)
              | (Count | Min | Max), _ -> ());
              if st.vmin = Value.VNull || Value.compare v st.vmin < 0 then st.vmin <- v;
              if st.vmax = Value.VNull || Value.compare v st.vmax > 0 then st.vmax <- v)
        specs states);
  List.map2
    (fun (agg, _) st ->
      match agg with
      | Count -> Value.VInt st.count
      | Sum -> if st.count = 0 then Value.VNull else Value.VInt st.sum
      | Avg -> if st.count = 0 then Value.VNull else Value.VInt (st.sum / st.count)
      | Min -> st.vmin
      | Max -> st.vmax)
    specs states

let group_by db ~set ~where ~key specs =
  let module VM = Map.Make (struct
    type t = Value.t

    let compare = Value.compare
  end) in
  let groups = ref VM.empty in
  iter_selected db ~set where (fun oid record ->
      let k = eval_expr db ~set ~oid record key in
      let states =
        match VM.find_opt k !groups with
        | Some states -> states
        | None ->
            let states =
              List.map (fun _ -> { count = 0; sum = 0; vmin = Value.VNull; vmax = Value.VNull }) specs
            in
            groups := VM.add k states !groups;
            states
      in
      List.iter2
        (fun (agg, expr) st ->
          match eval_expr db ~set ~oid record expr with
          | Value.VNull -> ()
          | v ->
              st.count <- st.count + 1;
              (match (agg, v) with
              | (Sum | Avg), Value.VInt i -> st.sum <- st.sum + i
              | (Sum | Avg), _ ->
                  invalid_arg
                    (Printf.sprintf "Exec.group_by: sum/avg over non-integer %s" expr)
              | (Count | Min | Max), _ -> ());
              if st.vmin = Value.VNull || Value.compare v st.vmin < 0 then st.vmin <- v;
              if st.vmax = Value.VNull || Value.compare v st.vmax > 0 then st.vmax <- v)
        specs states);
  VM.bindings !groups
  |> List.map (fun (k, states) ->
         ( k,
           List.map2
             (fun (agg, _) st ->
               match agg with
               | Count -> Value.VInt st.count
               | Sum -> if st.count = 0 then Value.VNull else Value.VInt st.sum
               | Avg -> if st.count = 0 then Value.VNull else Value.VInt (st.sum / st.count)
               | Min -> st.vmin
               | Max -> st.vmax)
             specs states ))

let delete_where db ~set where =
  let targets = matching_oids db ~set where in
  List.iter (fun oid -> Db.delete db ~set oid) targets;
  List.length targets

let retrieve_sorted db (q : Ast.retrieve) ~order_by ?(descending = false) ?limit () =
  let set = q.Ast.from_set in
  let rows = ref [] in
  iter_selected db ~set q.Ast.where (fun oid record ->
      let key = eval_expr db ~set ~oid record order_by in
      let values = project db ~set ~oid record q.Ast.projections in
      rows := (key, values) :: !rows);
  let compare_rows (a, _) (b, _) =
    let c = Value.compare a b in
    if descending then -c else c
  in
  let sorted = List.stable_sort compare_rows (List.rev !rows) in
  let truncated =
    match limit with
    | Some n -> List.filteri (fun i _ -> i < n) sorted
    | None -> sorted
  in
  List.map snd truncated

let replace db (q : Ast.replace) =
  let set = q.Ast.target_set in
  (* Materialise the target list before mutating.  Index-driven selection
     returns targets in key order — physically random when the set is
     unclustered — so under batching the updates are applied in ascending
     OID order instead: each data page (and each propagation fan-out) is
     visited once, sequentially, rather than re-fetched per key. *)
  let targets = matching_oids db ~set q.Ast.rwhere in
  let targets =
    if Db.batching db then List.sort Oid.compare targets else targets
  in
  List.iter
    (fun oid ->
      List.iter
        (fun (field, rhs) ->
          let value =
            match rhs with Ast.Const v -> v | Ast.Computed f -> f oid
          in
          Db.update_field db ~set oid ~field value)
        q.Ast.assignments)
    targets;
  List.length targets
