(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6), runs the empirical validation the paper never could,
   ablates the §4.3 optimizations, and times core operations with Bechamel.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- figure-11 table-12 figure-13 table-14
     dune exec bench/main.exe -- validate ablate-small-links ablate-collapse
     dune exec bench/main.exe -- path-index space micro
*)

module Db = Fieldrep.Db
module Oid = Fieldrep_storage.Oid
module Pager = Fieldrep_storage.Pager
module Stats = Fieldrep_storage.Stats
module Heap_file = Fieldrep_storage.Heap_file
module Key = Fieldrep_btree.Key
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path
module Ast = Fieldrep_query.Ast
module Exec = Fieldrep_query.Exec
module Params = Fieldrep_costmodel.Params
module Cost = Fieldrep_costmodel.Cost
module Sweep = Fieldrep_costmodel.Sweep
module Gen = Fieldrep_workload.Gen
module Mix = Fieldrep_workload.Mix
module Multi = Fieldrep_workload.Multi
module Wal = Fieldrep_wal.Wal
module Disk = Fieldrep_storage.Disk
module Scrub = Fieldrep_scrub.Scrub
module T = Fieldrep_util.Tableprint
module Splitmix = Fieldrep_util.Splitmix

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let strategy_label = Sweep.strategy_name

let clustering_label = function
  | Params.Unclustered -> "unclustered"
  | Params.Clustered -> "clustered"

(* ------------------------------------------------------------------ *)
(* Figures 11 and 13: % difference in C_total vs update probability    *)

let figure clustering number =
  section
    (Printf.sprintf
       "Figure %d: %% difference in C_total vs no replication (%s indexes)" number
       (clustering_label clustering));
  Printf.printf
    "(paper: |S|=10000, f_s=.001; series cut off at +50%% in the paper's plots)\n";
  let data = Sweep.figure Params.default clustering in
  List.iter
    (fun (f, series) ->
      Printf.printf "\n--- f = %d, |R| = %d ---\n" f (10_000 * f);
      let probs = List.map fst (List.hd series).Sweep.points in
      let header =
        "P(update)"
        :: List.map
             (fun s ->
               Printf.sprintf "%s fr=%.3f"
                 (match s.Sweep.strategy with
                 | Params.Inplace -> "inpl"
                 | Params.Separate -> "sep"
                 | Params.No_replication -> "none")
                 s.Sweep.read_sel)
             series
      in
      let rows =
        List.mapi
          (fun i prob ->
            T.fixed 2 prob
            :: List.map (fun s -> T.fixed 1 (snd (List.nth s.Sweep.points i))) series)
          probs
      in
      T.print ~header rows)
    data;
  (* The crossovers the paper calls out in §6.6. *)
  Printf.printf "\nCrossover update probabilities (in-place stops beating separate):\n";
  List.iter
    (fun f ->
      let p = { Params.default with Params.sharing = f; Params.read_sel = 0.002 } in
      match Sweep.crossover p clustering Params.Inplace Params.Separate with
      | Some x -> Printf.printf "  f=%-3d: %.3f\n" f x
      | None -> Printf.printf "  f=%-3d: never\n" f)
    [ 1; 10; 20; 50 ]

(* ------------------------------------------------------------------ *)
(* Figures 12 and 14: selected C_read / C_update values                *)

let table clustering number =
  section
    (Printf.sprintf "Figure %d (table): selected values for C_read and C_update (%s)"
       number (clustering_label clustering));
  let cells = Sweep.table Params.default clustering in
  let paper =
    match clustering with
    | Params.Unclustered ->
        [ (1, "no replication", 43, 22); (1, "in-place", 23, 42); (1, "separate", 41, 42);
          (20, "no replication", 691, 22); (20, "in-place", 407, 427); (20, "separate", 509, 42) ]
    | Params.Clustered ->
        [ (1, "no replication", 24, 4); (1, "in-place", 4, 24); (1, "separate", 23, 6);
          (20, "no replication", 316, 4); (20, "in-place", 32, 400); (20, "separate", 133, 6) ]
  in
  let rows =
    List.map
      (fun c ->
        let name = strategy_label c.Sweep.t_strategy in
        let _, _, pr, pu =
          List.find (fun (f, n, _, _) -> f = c.Sweep.t_sharing && n = name) paper
        in
        [
          Printf.sprintf "f=%d, %s" c.Sweep.t_sharing name;
          string_of_int c.Sweep.c_read;
          string_of_int pr;
          string_of_int c.Sweep.c_update;
          string_of_int pu;
        ])
      cells
  in
  T.print
    ~header:[ "strategy (fr=.002)"; "C_read"; "paper"; "C_update"; "paper" ]
    rows

(* ------------------------------------------------------------------ *)
(* V1: empirical validation (model vs measured on the real engine)     *)

let validate () =
  section "V1: analytical model vs measured I/O of this implementation";
  Printf.printf
    "(|S|=2000 scaled from the paper's 10000 for runtime; fr=.002, fs=.001;\n\
    \ each query runs cold so measured I/O = distinct pages touched)\n\n";
  let rows = ref [] in
  List.iter
    (fun clustering ->
      List.iter
        (fun sharing ->
          List.iter
            (fun strategy ->
              let spec =
                {
                  Gen.default_spec with
                  Gen.sharing;
                  strategy;
                  clustering;
                  s_count = 2000;
                  seed = 17;
                }
              in
              let c = Mix.validate spec ~read_sel:0.002 ~update_sel:0.001 ~queries:12 () in
              rows :=
                [
                  clustering_label clustering;
                  string_of_int sharing;
                  strategy_label strategy;
                  T.fixed 1 c.Mix.measured_read;
                  T.fixed 1 c.Mix.model_read;
                  T.fixed 1 c.Mix.measured_update;
                  T.fixed 1 c.Mix.model_update;
                ]
                :: !rows)
            [ Params.No_replication; Params.Inplace; Params.Separate ])
        [ 1; 10; 20 ])
    [ Params.Unclustered; Params.Clustered ];
  T.print
    ~header:
      [ "indexes"; "f"; "strategy"; "read meas"; "read model"; "upd meas"; "upd model" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* V2: a measured miniature of Figure 11                               *)

let figure11_measured () =
  section "V2: measured % difference in C_total (miniature Figure 11)";
  Printf.printf
    "(|S|=1000, fr=.002, fs=.001, unclustered; real page I/O per query mix,\n\
    \ mirroring the analytical Figure 11 series at f in {1, 10})\n\n";
  List.iter
    (fun sharing ->
      Printf.printf "\n--- f = %d ---\n" sharing;
      let measure strategy =
        let spec =
          { Gen.default_spec with Gen.sharing; strategy; s_count = 1000; seed = 97 }
        in
        Mix.measure (Gen.build spec) ~read_sel:0.002 ~update_sel:0.001 ~queries:10 ()
      in
      let none = measure Params.No_replication in
      let inplace = measure Params.Inplace in
      let separate = measure Params.Separate in
      let pct m prob =
        let base = Mix.mixed_cost none ~update_prob:prob in
        100.0 *. (Mix.mixed_cost m ~update_prob:prob -. base) /. base
      in
      let probs = List.init 11 (fun i -> float_of_int i /. 10.0) in
      T.print
        ~header:[ "P(update)"; "in-place %"; "separate %" ]
        (List.map
           (fun p -> [ T.fixed 1 p; T.fixed 1 (pct inplace p); T.fixed 1 (pct separate p) ])
           probs))
    [ 1; 10 ]

(* ------------------------------------------------------------------ *)
(* A1: small-link elimination ablation (§4.3.1)                        *)

let ablate_small_links () =
  section "A1: small-link elimination (paper 4.3.1), in-place updates";
  Printf.printf
    "(update-propagation I/O per query and link-file size, threshold 1 vs 0)\n\n";
  let rows = ref [] in
  List.iter
    (fun sharing ->
      List.iter
        (fun threshold ->
          let spec =
            {
              Gen.default_spec with
              Gen.sharing;
              strategy = Params.Inplace;
              s_count = 1500;
              seed = 23;
            }
          in
          (* Build manually to control the threshold. *)
          let built =
            Gen.build { spec with Gen.strategy = Params.No_replication }
          in
          let options = { Schema.default_options with Schema.small_link_threshold = threshold } in
          Db.replicate built.Gen.db ~options ~strategy:Schema.Inplace
            (Path.parse "R.sref.repfield");
          let m = Mix.measure built ~read_sel:0.002 ~update_sel:0.001 ~queries:10 () in
          let eng = Db.engine built.Gen.db in
          let link_pages =
            Fieldrep_replication.Store.total_pages eng.Fieldrep_replication.Engine.store
          in
          rows :=
            [
              string_of_int sharing;
              string_of_int threshold;
              T.fixed 1 m.Mix.avg_update_io;
              string_of_int link_pages;
            ]
            :: !rows)
        [ 0; 1 ])
    [ 1; 2; 4 ];
  T.print ~header:[ "f"; "threshold"; "update I/O"; "link pages" ] (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* A2: collapsed inverted paths ablation (§4.3.3)                      *)

let ablate_collapse () =
  section "A2: collapsed inverted paths (paper 4.3.3), 2-level path";
  Printf.printf
    "(field updates get cheaper — one link hop instead of two — while\n\
    \ reference updates on the intermediate get dearer: entries must move)\n\n";
  let build collapse =
    let db = Gen.employee_db ~norgs:8 ~ndepts:60 ~nemps:3000 ~seed:31 () in
    let options = { Schema.default_options with Schema.collapse } in
    Db.replicate db ~options ~strategy:Schema.Inplace (Path.parse "Emp1.dept.org.name");
    db
  in
  let io db f = Pager.run_cold (Db.pager db) f; float_of_int (Stats.total_io (Db.stats db)) in
  let orgs db = Exec.matching_oids db ~set:"Org" None |> Array.of_list in
  let depts db = Exec.matching_oids db ~set:"Dept" None |> Array.of_list in
  let rows = ref [] in
  List.iter
    (fun collapse ->
      let db = build collapse in
      let rng = Splitmix.create 5 in
      let orgs = orgs db and depts = depts db in
      let field_io = ref 0.0 and ref_io = ref 0.0 in
      let trials = 12 in
      for i = 1 to trials do
        let o = orgs.(Splitmix.int rng (Array.length orgs)) in
        field_io :=
          !field_io
          +. io db (fun () ->
                 Db.update_field db ~set:"Org" o ~field:"name"
                   (Value.VString (Printf.sprintf "org-upd-%d-%b" i collapse)));
        let d = depts.(Splitmix.int rng (Array.length depts)) in
        let target = orgs.(Splitmix.int rng (Array.length orgs)) in
        ref_io :=
          !ref_io
          +. io db (fun () ->
                 Db.update_field db ~set:"Dept" d ~field:"org" (Value.VRef target))
      done;
      Db.check_integrity db;
      rows :=
        [
          (if collapse then "collapsed" else "two-level");
          T.fixed 1 (!field_io /. float_of_int trials);
          T.fixed 1 (!ref_io /. float_of_int trials);
        ]
        :: !rows)
    [ false; true ];
  T.print
    ~header:[ "inverted path"; "org.name update I/O"; "dept.org ref-update I/O" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* A3: index on a replicated 2-level path (§3.3.4)                     *)

let path_index () =
  section "A3: associative lookup on Emp1.dept.org.name (paper 3.3.4)";
  Printf.printf
    "(replicated-path B+-tree vs evaluating the path by scan + functional joins)\n\n";
  let db = Gen.employee_db ~norgs:10 ~ndepts:80 ~nemps:8000 ~seed:41 () in
  Db.replicate db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.org.name");
  Db.build_index db ~name:"emp_by_orgname" ~set:"Emp1" ~field:"Emp1.dept.org.name"
    ~clustered:false;
  let io f = Pager.run_cold (Db.pager db) f; Stats.total_io (Db.stats db) in
  let target = Value.VString "org-03" in
  let via_index = ref 0 in
  let hits_index =
    let res = ref [] in
    via_index :=
      io (fun () -> res := Db.index_lookup db ~index:"emp_by_orgname" (Key.String "org-03"));
    List.length !res
  in
  let via_scan = ref 0 in
  let hits_scan =
    let count = ref 0 in
    via_scan :=
      io (fun () ->
          Db.scan db ~set:"Emp1" (fun _ record ->
              (* The honest baseline walks the actual references. *)
              let v =
                match Db.field_value db ~set:"Emp1" record "dept" with
                | Value.VRef d -> (
                    match Db.field_value db ~set:"Dept" (Db.get db ~set:"Dept" d) "org" with
                    | Value.VRef o -> Db.field_value db ~set:"Org" (Db.get db ~set:"Org" o) "name"
                    | _ -> Value.VNull)
                | _ -> Value.VNull
              in
              if Value.equal v target then incr count));
    !count
  in
  T.print
    ~header:[ "method"; "matching emps"; "page I/O" ]
    [
      [ "B+-tree on replicated path"; string_of_int hits_index; string_of_int !via_index ];
      [ "scan + functional joins"; string_of_int hits_scan; string_of_int !via_scan ];
    ]

(* ------------------------------------------------------------------ *)
(* A6: co-clustered link objects (§4.3.2)                              *)

let ablate_cluster_links () =
  section "A6: clustering related link objects (paper 4.3.2), 2-level path";
  Printf.printf
    "(propagating an org.name update reads the org's link object and then the\n\
    \ link objects of its depts; co-clustering them in one file makes those\n\
    \ reads adjacent)\n\n";
  let build clustered =
    let db = Gen.employee_db ~norgs:40 ~ndepts:400 ~nemps:6000 ~seed:71 () in
    let options =
      { Schema.default_options with Schema.cluster_links = clustered;
        Schema.small_link_threshold = 0 }
    in
    Db.replicate db ~options ~strategy:Schema.Inplace (Path.parse "Emp1.dept.org.name");
    db
  in
  let rows = ref [] in
  List.iter
    (fun clustered ->
      let db = build clustered in
      let orgs = Exec.matching_oids db ~set:"Org" None |> Array.of_list in
      let rng = Splitmix.create 3 in
      let trials = 15 in
      let total = ref 0.0 in
      for i = 1 to trials do
        let o = orgs.(Splitmix.int rng (Array.length orgs)) in
        Pager.run_cold (Db.pager db) (fun () ->
            Db.update_field db ~set:"Org" o ~field:"name"
              (Value.VString (Printf.sprintf "org-%d-%b" i clustered)));
        total := !total +. float_of_int (Stats.total_io (Db.stats db))
      done;
      Db.check_integrity db;
      rows :=
        [
          (if clustered then "co-clustered" else "per-level files");
          T.fixed 1 (!total /. float_of_int trials);
        ]
        :: !rows)
    [ false; true ];
  T.print ~header:[ "link layout"; "org.name update I/O" ] (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* A4: lazy vs eager propagation (paper §8 future work)                *)

let ablate_lazy () =
  section "A4: eager vs lazy propagation (paper 8, 'not propagated until needed')";
  Printf.printf
    "(f=16: updates to a dept name hit 16 employees eagerly; lazily they\n\
    \ only mark an in-memory invalidation entry, and reads repair on demand)\n\n";
  let build lazy_ =
    let spec =
      { Gen.default_spec with Gen.sharing = 16; strategy = Params.No_replication; s_count = 800; seed = 91 }
    in
    let built = Gen.build spec in
    let options = { Schema.default_options with Schema.lazy_propagation = lazy_ } in
    Db.replicate built.Gen.db ~options ~strategy:Schema.Inplace (Path.parse "R.sref.repfield");
    built
  in
  let io db f =
    Pager.run_cold (Db.pager db) f;
    float_of_int (Stats.total_io (Db.stats db))
  in
  let rows = ref [] in
  List.iter
    (fun lazy_ ->
      let built = build lazy_ in
      let db = built.Gen.db in
      let rng = Splitmix.create 7 in
      let trials = 10 in
      let upd = ref 0.0 and first_read = ref 0.0 and second_read = ref 0.0 in
      for i = 1 to trials do
        let lo = Splitmix.int rng 700 in
        let uq =
          {
            Ast.target_set = "S";
            assignments =
              [ ("repfield", Ast.Const (Value.VString (Printf.sprintf "%020d" i))) ];
            rwhere = Some (Ast.eq "field_s" (Value.VInt lo));
          }
        in
        upd := !upd +. io db (fun () -> ignore (Exec.replace db uq));
        (* Read queries over R keys likely touching the invalidated rows. *)
        let rq =
          {
            Ast.from_set = "R";
            projections = [ "field_r"; "sref.repfield" ];
            where = Some (Ast.between "field_r" (Value.VInt (lo * 16)) (Value.VInt ((lo * 16) + 31)));
          }
        in
        first_read :=
          !first_read
          +. io db (fun () ->
                 let res = Exec.retrieve db rq in
                 Exec.drop_output db res.Exec.output_file);
        second_read :=
          !second_read
          +. io db (fun () ->
                 let res = Exec.retrieve db rq in
                 Exec.drop_output db res.Exec.output_file)
      done;
      Db.check_integrity db;
      rows :=
        [
          (if lazy_ then "lazy" else "eager");
          T.fixed 1 (!upd /. float_of_int trials);
          T.fixed 1 (!first_read /. float_of_int trials);
          T.fixed 1 (!second_read /. float_of_int trials);
        ]
        :: !rows)
    [ false; true ];
  T.print
    ~header:[ "propagation"; "update I/O"; "first read I/O"; "re-read I/O" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* A5: read cost vs path depth                                         *)

let depth_sweep () =
  section "A5: read I/O vs reference-path depth (per strategy)";
  Printf.printf
    "(chain of 4 types, fanout 4 per level; 20-object read queries projecting\n\
    \ a path of depth d: no replication pays d joins, separate one, in-place none)\n\n";
  (* A generic chain: L3 -> L2 -> L1 -> L0 (depth up to 3). *)
  let build strategy depth =
    let db = Db.create ~page_size:4096 ~frames:512 () in
    let rng = Splitmix.create 13 in
    for lvl = 0 to 3 do
      let fields =
        [
          { Ty.fname = "key"; ftype = Ty.Scalar Ty.SInt };
          { Ty.fname = "payload"; ftype = Ty.Scalar Ty.SString };
        ]
        @ (if lvl > 0 then [ { Ty.fname = "next"; ftype = Ty.Ref (Printf.sprintf "L%d" (lvl - 1)) } ] else [])
      in
      Db.define_type db (Ty.make ~name:(Printf.sprintf "L%d" lvl) fields)
    done;
    for lvl = 0 to 3 do
      Db.create_set db ~reserve:800
        ~name:(Printf.sprintf "Set%d" lvl)
        ~elem_type:(Printf.sprintf "L%d" lvl) ()
    done;
    let counts = [| 50; 200; 800; 3200 |] in
    let oids = Array.make 4 [||] in
    for lvl = 0 to 3 do
      (* Shuffled reference assignment: adjacent objects reference scattered
         targets ("relatively unclustered", the model's 6.2 assumption). *)
      let refs =
        if lvl = 0 then [||]
        else begin
          let r = Array.init counts.(lvl) (fun i -> oids.(lvl - 1).(i mod counts.(lvl - 1))) in
          Splitmix.shuffle rng r;
          r
        end
      in
      oids.(lvl) <-
        Array.init counts.(lvl) (fun i ->
            let base =
              [
                Value.VInt i;
                Value.VString (String.init 60 (fun _ -> Char.chr (97 + Splitmix.int rng 26)));
              ]
            in
            let values = if lvl = 0 then base else base @ [ Value.VRef refs.(i) ] in
            Db.insert db ~set:(Printf.sprintf "Set%d" lvl) values)
    done;
    Db.build_index db ~name:"top_key" ~set:"Set3" ~field:"key" ~clustered:false;
    let path_str =
      "Set3." ^ String.concat "." (List.init depth (fun _ -> "next")) ^ ".payload"
    in
    let expr = String.concat "." (List.init depth (fun _ -> "next")) ^ ".payload" in
    (match strategy with
    | Params.No_replication -> ()
    | Params.Inplace -> Db.replicate db ~strategy:Schema.Inplace (Path.parse path_str)
    | Params.Separate -> Db.replicate db ~strategy:Schema.Separate (Path.parse path_str));
    (db, expr)
  in
  let rows = ref [] in
  List.iter
    (fun depth ->
      List.iter
        (fun strategy ->
          let db, expr = build strategy depth in
          let rng = Splitmix.create 3 in
          let trials = 8 in
          let total = ref 0.0 in
          for _ = 1 to trials do
            let lo = Splitmix.int rng 3000 in
            let q =
              {
                Ast.from_set = "Set3";
                projections = [ "key"; expr ];
                where = Some (Ast.between "key" (Value.VInt lo) (Value.VInt (lo + 19)));
              }
            in
            Pager.run_cold (Db.pager db) (fun () ->
                let res = Exec.retrieve db q in
                Exec.drop_output db res.Exec.output_file);
            total := !total +. float_of_int (Stats.total_io (Db.stats db))
          done;
          rows :=
            [
              string_of_int depth;
              strategy_label strategy;
              T.fixed 1 (!total /. float_of_int trials);
            ]
            :: !rows)
        [ Params.No_replication; Params.Inplace; Params.Separate ])
    [ 1; 2; 3 ];
  T.print ~header:[ "depth"; "strategy"; "read I/O (20 objects)" ] (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* S1: sensitivity to the replicated-field size k                      *)

let k_sweep () =
  section "S1: sensitivity of the analytical benefit to k (replicated field size)";
  Printf.printf
    "(%% difference in C_total vs no replication at P(update)=0.05, f=10,\n\
    \ fr=.002; bigger replicated fields bloat R and erode in-place's edge,\n\
    \ while separate also pays through a bigger S')\n\n";
  let rows =
    List.map
      (fun k ->
        let p =
          { Params.default with Params.sharing = 10; read_sel = 0.002; rep_field_bytes = k }
        in
        let pct strategy =
          Cost.percent_vs_no_replication p strategy Params.Unclustered ~update_prob:0.05
        in
        [
          string_of_int k;
          T.fixed 1 (pct Params.Inplace);
          T.fixed 1 (pct Params.Separate);
        ])
      [ 4; 10; 20; 50; 100; 150 ]
  in
  T.print ~header:[ "k (bytes)"; "in-place %"; "separate %" ] rows

(* ------------------------------------------------------------------ *)
(* S2: warm buffer pool (outside the model's cold assumption)          *)

let warm_cache () =
  section "S2: warm vs cold buffer pool (outside the model's assumptions)";
  Printf.printf
    "(the model prices cold queries; a warm pool absorbs repeated reads —\n\
    \ the same read query run twice without clearing the pool)\n\n";
  let built =
    Gen.build { Gen.default_spec with Gen.s_count = 1000; sharing = 10; seed = 3 }
  in
  let db = built.Gen.db in
  let q lo =
    {
      Ast.from_set = "R";
      projections = [ "field_r"; "sref.repfield" ];
      where = Some (Ast.between "field_r" (Value.VInt lo) (Value.VInt (lo + 19)));
    }
  in
  (* Keep the output files alive until the end: dropping one clears the
     whole buffer pool, which is exactly the effect we are not measuring. *)
  let outputs = ref [] in
  let run query =
    let before = Stats.copy (Db.stats db) in
    let res = Exec.retrieve db query in
    outputs := res.Exec.output_file :: !outputs;
    let after = Stats.copy (Db.stats db) in
    ( after.Stats.page_reads - before.Stats.page_reads,
      after.Stats.buffer_hits - before.Stats.buffer_hits )
  in
  Pager.run_cold (Db.pager db) (fun () -> ());
  let cold_reads, cold_hits = run (q 100) in
  let warm_reads, warm_hits = run (q 100) in
  let nearby_reads, nearby_hits = run (q 110) in
  T.print
    ~header:[ "run"; "physical reads"; "buffer hits" ]
    [
      [ "cold"; string_of_int cold_reads; string_of_int cold_hits ];
      [ "same query, warm"; string_of_int warm_reads; string_of_int warm_hits ];
      [ "overlapping query"; string_of_int nearby_reads; string_of_int nearby_hits ];
    ];
  List.iter (fun f -> Exec.drop_output db f) !outputs

(* ------------------------------------------------------------------ *)
(* Space overhead (§4.2 discussion)                                    *)

let space () =
  section "Space overhead per strategy (paper 4.2 discussion)";
  Printf.printf
    "(measured pages of this implementation next to the model's P_r / P_s /\n\
    \ auxiliary pages at the paper's nominal object sizes; measured R runs\n\
    \ larger because of per-value tags and the PCTFREE growth reserve)\n\n";
  let rows = ref [] in
  List.iter
    (fun (sharing, strategy) ->
      let spec =
        { Gen.default_spec with Gen.sharing; strategy; s_count = 2000; seed = 53 }
      in
      let b = Gen.build spec in
      let db = b.Gen.db in
      let eng = Db.engine db in
      let store_pages =
        Fieldrep_replication.Store.total_pages eng.Fieldrep_replication.Engine.store
      in
      let model =
        Cost.space { Params.default with Params.sharing; s_count = 2000 } strategy
      in
      rows :=
        [
          Printf.sprintf "f=%d %s" sharing (strategy_label strategy);
          string_of_int (Db.set_pages db "R");
          string_of_int model.Cost.r_pages;
          string_of_int (Db.set_pages db "S");
          string_of_int model.Cost.s_pages;
          string_of_int store_pages;
          string_of_int model.Cost.aux_pages;
        ]
        :: !rows)
    [
      (1, Params.No_replication); (1, Params.Inplace); (1, Params.Separate);
      (10, Params.No_replication); (10, Params.Inplace); (10, Params.Separate);
    ];
  T.print
    ~header:
      [ "configuration"; "R meas"; "R model"; "S meas"; "S model"; "aux meas"; "aux model" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (wall-clock time of core operations)      *)

let micro () =
  section "Micro-benchmarks (Bechamel, wall-clock time per operation)";
  let open Bechamel in
  let open Bechamel.Toolkit in
  let emp_plain = Gen.employee_db ~norgs:4 ~ndepts:30 ~nemps:2000 ~seed:61 () in
  let emp_inplace = Gen.employee_db ~norgs:4 ~ndepts:30 ~nemps:2000 ~seed:61 () in
  Db.replicate emp_inplace ~strategy:Schema.Inplace (Path.parse "Emp1.dept.org.name");
  let emp_separate = Gen.employee_db ~norgs:4 ~ndepts:30 ~nemps:2000 ~seed:61 () in
  Db.replicate emp_separate ~strategy:Schema.Separate (Path.parse "Emp1.dept.org.name");
  let emps db = Exec.matching_oids db ~set:"Emp1" None |> Array.of_list in
  let emps_plain = emps emp_plain in
  let emps_inplace = emps emp_inplace in
  let emps_separate = emps emp_separate in
  let orgs = Exec.matching_oids emp_inplace ~set:"Org" None |> Array.of_list in
  let counter = ref 0 in
  let deref db arr () =
    incr counter;
    ignore (Db.deref db ~set:"Emp1" arr.(!counter mod Array.length arr) "dept.org.name")
  in
  let tests =
    [
      Test.make ~name:"deref 2-level (no replication)" (Staged.stage (deref emp_plain emps_plain));
      Test.make ~name:"deref 2-level (in-place)" (Staged.stage (deref emp_inplace emps_inplace));
      Test.make ~name:"deref 2-level (separate)" (Staged.stage (deref emp_separate emps_separate));
      Test.make ~name:"propagate org.name (in-place)"
        (Staged.stage (fun () ->
             incr counter;
             Db.update_field emp_inplace ~set:"Org"
               orgs.(!counter mod Array.length orgs)
               ~field:"name"
               (Value.VString (Printf.sprintf "bench-%d" !counter))));
      Test.make ~name:"btree point lookup"
        (let b = Gen.build { Gen.default_spec with Gen.s_count = 2000; seed = 67 } in
         Staged.stage (fun () ->
             incr counter;
             ignore
               (Db.index_lookup b.Gen.db ~index:Gen.r_index (Key.Int (!counter mod 2000)))));
      Test.make ~name:"insert employee"
        (let fresh = Gen.employee_db ~norgs:4 ~ndepts:30 ~nemps:100 ~seed:71 () in
         Db.replicate fresh ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
         let depts = Exec.matching_oids fresh ~set:"Dept" None |> Array.of_list in
         Staged.stage (fun () ->
             incr counter;
             ignore
               (Db.insert fresh ~set:"Emp1"
                  [
                    Value.VString (Printf.sprintf "bench-emp-%d" !counter);
                    Value.VInt 30;
                    Value.VInt 50_000;
                    Value.VRef depts.(!counter mod Array.length depts);
                  ])));
    ]
  in
  let benchmark test =
    let quota = Time.second 0.25 in
    Benchmark.all (Benchmark.cfg ~quota ~kde:None ()) Instance.[ monotonic_clock ] test
  in
  let results =
    List.map
      (fun test ->
        let results = benchmark test in
        let analysis =
          Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
            Instance.monotonic_clock results
        in
        (Test.Elt.name (List.hd (Test.elements test)), analysis))
      tests
  in
  let rows =
    List.map
      (fun (name, analysis) ->
        let estimate =
          Hashtbl.fold
            (fun _ ols acc ->
              match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> acc)
            analysis 0.0
        in
        [ name; Printf.sprintf "%.1f ns" estimate ])
      results
  in
  T.print ~header:[ "operation"; "time/op" ] rows

(* ------------------------------------------------------------------ *)
(* W1: write-ahead logging overhead on the paper's update mixes        *)

let wal_overhead () =
  section "W1: write-ahead logging overhead on the 6 update mixes";
  Printf.printf
    "(the same update mix run on a plain and on a durable database; the log\n\
    \ adds one logical redo record per update, so its cost is the appended\n\
    \ bytes — expressed below as incremental page I/O per update query)\n\n";
  let page_size = Gen.default_spec.Gen.page_size in
  let rows = ref [] in
  List.iter
    (fun strategy ->
      let spec =
        {
          Gen.default_spec with
          Gen.strategy;
          s_count = 1000;
          sharing = 4;
          seed = 19;
        }
      in
      let plain = Gen.build spec in
      let m_plain = Mix.measure plain ~read_sel:0.002 ~update_sel:0.001 ~queries:10 () in
      let durable = Gen.build { spec with Gen.durable = true } in
      let w = Option.get (Db.wal durable.Gen.db) in
      let appends0 = Wal.appended w and bytes0 = Wal.bytes_written w in
      let m_durable =
        Mix.measure durable ~read_sel:0.002 ~update_sel:0.001 ~queries:10 ()
      in
      let queries = float_of_int m_durable.Mix.update_queries in
      let appends = float_of_int (Wal.appended w - appends0) /. queries in
      let bytes = float_of_int (Wal.bytes_written w - bytes0) /. queries in
      let log_pages = bytes /. float_of_int page_size in
      rows :=
        [
          strategy_label strategy;
          T.fixed 1 m_plain.Mix.avg_update_io;
          T.fixed 1 m_durable.Mix.avg_update_io;
          T.fixed 1 appends;
          T.fixed 0 bytes;
          T.fixed 3 log_pages;
        ]
        :: !rows)
    [ Params.No_replication; Params.Inplace; Params.Separate ];
  T.print
    ~header:
      [
        "strategy";
        "upd I/O plain";
        "upd I/O durable";
        "log recs/upd";
        "log bytes/upd";
        "log pages/upd";
      ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Gate metrics: named scalars a bench wants surfaced in the JSON       *)
(* output for CI regression gates, beyond the generic per-bench         *)
(* counters the driver collects.                                        *)

let gate_metrics : (string * (string * int) list) list ref = ref []

let add_gate_metrics bench kvs =
  gate_metrics :=
    (bench, (try List.assoc bench !gate_metrics with Not_found -> []) @ kvs)
    :: List.remove_assoc bench !gate_metrics

(* ------------------------------------------------------------------ *)
(* P1: batched physically-ordered propagation and read-ahead            *)

let p1 () =
  section "P1: batched propagation (physical order) vs per-object reference path";
  Printf.printf
    "(the same seeded 1-level update mix, cold, against identical databases;\n\
    \ batching sorts every update fan-out by physical OID and rewrites each\n\
    \ page's hidden copies under one pin, so unclustered index-order target\n\
    \ lists stop re-fetching pages)\n\n";
  let queries = 12 in
  let run built =
    let db = built.Gen.db in
    let rng = Splitmix.create 77 in
    Pager.run_cold (Db.pager db) (fun () ->
        for _ = 1 to queries do
          ignore (Exec.replace db (Mix.update_query built rng ~update_sel:0.05))
        done);
    let s = Db.stats db in
    (s.Stats.page_reads, s.Stats.page_writes)
  in
  let rows = ref [] in
  let batched_io = ref 0 in
  List.iter
    (fun strategy ->
      let spec =
        {
          Gen.default_spec with
          Gen.strategy;
          s_count = 1000;
          sharing = 4;
          frames = 16;
          seed = 59;
        }
      in
      let batched = Gen.build spec in
      let reference = Gen.build spec in
      Db.set_batching reference.Gen.db false;
      let br, bw = run batched in
      let rr, rw = run reference in
      batched_io := !batched_io + br + bw;
      rows :=
        [
          strategy_label strategy;
          string_of_int rr;
          string_of_int br;
          T.fixed 1 (100.0 *. float_of_int (rr - br) /. float_of_int (max 1 rr));
          string_of_int rw;
          string_of_int bw;
        ]
        :: !rows)
    [ Params.No_replication; Params.Inplace; Params.Separate ];
  T.print
    ~header:
      [
        "strategy";
        "reads per-obj";
        "reads batched";
        "reads saved %";
        "writes per-obj";
        "writes batched";
      ]
    (List.rev !rows);
  add_gate_metrics "p1" [ ("p1_update_io", !batched_io) ];
  (* Read-ahead: a cold full scan with sequential prefetch on vs off.  The
     simulated disk charges the same page reads either way; the win is that
     prefetched pages arrive before the demand miss (prefetch hits), i.e.
     the reads become sequential batches instead of synchronous stalls. *)
  Printf.printf "\nSequential read-ahead on a cold full scan of R:\n\n";
  let scan_rows =
    List.map
      (fun depth ->
        let b =
          Gen.build { Gen.default_spec with Gen.s_count = 2000; seed = 59 }
        in
        let db = b.Gen.db in
        Pager.set_prefetch (Db.pager db) depth;
        Pager.run_cold (Db.pager db) (fun () ->
            Db.scan db ~set:"R" (fun _ _ -> ()));
        let s = Db.stats db in
        [
          string_of_int depth;
          string_of_int s.Stats.page_reads;
          string_of_int s.Stats.prefetch_issued;
          string_of_int s.Stats.prefetch_hits;
        ])
      [ 0; 4; 16 ]
  in
  T.print
    ~header:[ "prefetch depth"; "page reads"; "issued"; "hits" ]
    scan_rows

(* ------------------------------------------------------------------ *)
(* T1: transaction throughput under contention                         *)

let txn_bench () =
  section "T1: interleaved transactions under contention (strict 2PL)";
  Printf.printf
    "(N round-robin clients run 64 transactions of 6 operations each over an\n\
    \ |S|=200, f=4 database with a 24-frame pool; the total work is the\n\
    \ same at every client count, so the deltas are pure concurrency-\n\
    \ control effects: blocked turns, deadlock aborts, and the retries\n\
    \ they cause; the databases are durable, and group commit amortises\n\
    \ one WAL flush over a whole transaction's records)\n\n";
  let total_txns = 64 and ops_per_txn = 6 in
  let appends_8c = ref 0 and flushes_8c = ref 0 in
  let rows = ref [] in
  List.iter
    (fun (mix_name, mix) ->
      List.iter
        (fun strategy ->
          List.iter
            (fun clients ->
              let spec =
                {
                  Gen.default_spec with
                  Gen.s_count = 200;
                  sharing = 4;
                  strategy;
                  frames = 24;
                  seed = 29;
                  durable = true;
                }
              in
              let built = Gen.build spec in
              let w = Option.get (Db.wal built.Gen.db) in
              let wa0 = Wal.appended w and wf0 = Wal.flushes w in
              let before = Stats.copy (Db.stats built.Gen.db) in
              let t0 = Unix.gettimeofday () in
              let res =
                Multi.run ~abort_prob:0.02 ~clients
                  ~txns_per_client:(total_txns / clients) ~ops_per_txn ~mix
                  ~seed:(41 + clients) built
              in
              let wall = Unix.gettimeofday () -. t0 in
              let wa = Wal.appended w - wa0 and wf = Wal.flushes w - wf0 in
              if clients = 8 then begin
                appends_8c := !appends_8c + wa;
                flushes_8c := !flushes_8c + wf
              end;
              let d = Stats.diff (Db.stats built.Gen.db) before in
              let io_per_txn =
                if res.Multi.commits = 0 then 0.0
                else
                  float_of_int res.Multi.committed_io
                  /. float_of_int res.Multi.commits
              in
              rows :=
                [
                  mix_name;
                  strategy_label strategy;
                  string_of_int clients;
                  string_of_int res.Multi.commits;
                  T.fixed 0 (float_of_int res.Multi.commits /. wall);
                  T.fixed 1 io_per_txn;
                  string_of_int res.Multi.blocked_turns;
                  string_of_int d.Stats.lock_waits;
                  string_of_int res.Multi.deadlock_aborts;
                  string_of_int res.Multi.discarded;
                  string_of_int wa;
                  string_of_int wf;
                ]
                :: !rows)
            [ 1; 2; 4; 8; 16 ])
        [ Params.No_replication; Params.Inplace; Params.Separate ])
    [ ("read", Multi.read_mix); ("update", Multi.update_mix) ];
  T.print
    ~header:
      [
        "mix";
        "strategy";
        "clients";
        "commits";
        "txn/s";
        "I/O per txn";
        "blocked";
        "lock waits";
        "dl aborts";
        "discarded";
        "wal app";
        "wal fl";
      ]
    (List.rev !rows);
  add_gate_metrics "txn"
    [ ("wal_appends_8c", !appends_8c); ("wal_flushes_8c", !flushes_8c) ]

(* ------------------------------------------------------------------ *)
(* R1: corruption scrubbing and degraded reads                         *)

let scrub_bench () =
  section "R1: checksum scrub, self-repair, and degraded reads";
  Printf.printf
    "(every auxiliary page — link objects and S' — gets bit-rot injected;\n\
    \ reads before the scrub detour through functional joins, the scrub\n\
    \ rebuilds the replicated state from the source objects, and a second\n\
    \ sweep confirms the repair converged)\n\n";
  let rows = ref [] in
  List.iter
    (fun (label, strategy, collapse) ->
      let db = Gen.employee_db ~norgs:6 ~ndepts:40 ~nemps:2500 ~seed:83 () in
      let options = { Schema.default_options with Schema.collapse } in
      Db.replicate db ~options ~strategy (Path.parse "Emp1.dept.org.name");
      let pager = Db.pager db in
      let disk = Pager.disk pager in
      Pager.flush pager;
      (* Bit-rot every auxiliary page (link objects and, for the separate
         strategy, the S' file). *)
      let eng = Db.engine db in
      let links, sprimes =
        Fieldrep_replication.Store.bindings eng.Fieldrep_replication.Engine.store
      in
      let ps = Disk.page_size disk in
      let corrupted = ref 0 in
      List.iter
        (fun (_, fid) ->
          for page = 0 to Disk.page_count disk fid - 1 do
            Disk.corrupt_page disk ~file:fid ~page [ ps / 8; ps / 3 ];
            incr corrupted
          done)
        (links @ sprimes);
      (* Cold reads against the corrupted replicas: every deref that lands on
         a quarantined page must detour through the functional join. *)
      let emps = Exec.matching_oids db ~set:"Emp1" None |> Array.of_list in
      Pager.run_cold pager (fun () ->
          for i = 0 to 199 do
            ignore (Db.deref db ~set:"Emp1" emps.(i * 7 mod Array.length emps) "dept.org.name")
          done);
      let degraded = (Db.stats db).Stats.degraded_reads in
      let t0 = Unix.gettimeofday () in
      let report = Db.scrub db in
      let wall = Unix.gettimeofday () -. t0 in
      Db.check_integrity db;
      let second = Db.scrub db in
      rows :=
        [
          label;
          string_of_int !corrupted;
          string_of_int report.Scrub.pages_scanned;
          string_of_int report.Scrub.checksum_failures;
          string_of_int report.Scrub.repairs;
          string_of_int degraded;
          T.fixed 1 (wall *. 1000.0);
          string_of_int (second.Scrub.checksum_failures + second.Scrub.repairs);
        ]
        :: !rows)
    [
      ("in-place", Schema.Inplace, false);
      ("separate", Schema.Separate, false);
      ("collapsed", Schema.Inplace, true);
    ];
  T.print
    ~header:
      [
        "strategy";
        "rotted";
        "scanned";
        "failures";
        "repairs";
        "degraded reads";
        "scrub ms";
        "2nd sweep";
      ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Repl: read capacity vs replica count over WAL shipping              *)

let repl_bench () =
  section "Repl: WAL shipping - read capacity vs replica count";
  Printf.printf
    "(a master runs an update workload while its WAL streams to N replicas\n\
    \ over the in-process loopback transport; after catch-up, each node's\n\
    \ warm read rate on the replicated path is measured independently and\n\
    \ summed — the aggregate capacity a read farm of that size serves)\n\n";
  let module Repl = Fieldrep_repl.Repl in
  let module Transport = Fieldrep_repl.Transport in
  let r_oids db =
    let acc = ref [] in
    Db.scan db ~set:"R" (fun oid _ -> acc := oid :: !acc);
    Array.of_list !acc
  in
  (* Warm reads/second on one node: every R object's replicated-field read,
     repeated enough to be measurable; best of three trials, so one noisy
     wall-clock sample does not misprice a node. *)
  let node_rate db =
    let oids = r_oids db in
    Array.iter (fun oid -> ignore (Db.deref db ~set:"R" oid "sref.repfield")) oids;
    (* pay outstanding GC debt now, not inside a timed trial *)
    Gc.major ();
    let passes = 50 in
    let best = ref 0.0 in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to passes do
        Array.iter
          (fun oid -> ignore (Db.deref db ~set:"R" oid "sref.repfield"))
          oids
      done;
      let dt = Unix.gettimeofday () -. t0 in
      best := Float.max !best (float_of_int (passes * Array.length oids) /. dt)
    done;
    !best
  in
  let run_config mode nreplicas =
    let built =
      Gen.build
        {
          Gen.default_spec with
          Gen.s_count = 500;
          sharing = 2;
          strategy = Params.Inplace;
          page_size = 1024;
          frames = 256;
          seed = 31;
          durable = true;
        }
    in
    let db = built.Gen.db in
    let m = Repl.Master.create ~mode db in
    let replicas =
      List.init nreplicas (fun _ ->
          let ma, rb, _, _ = Transport.loopback () in
          let r = Repl.Replica.connect rb in
          ignore
            (Repl.Master.attach ~pump:(fun () -> ignore (Repl.Replica.drain r)) m ma);
          ignore (Repl.Replica.drain r);
          r)
    in
    let s_oids =
      let acc = ref [] in
      Db.scan db ~set:"S" (fun oid _ -> acc := oid :: !acc);
      Array.of_list !acc
    in
    let rng = Splitmix.create 83 in
    for i = 1 to 100 do
      let oid = s_oids.(Splitmix.int rng (Array.length s_oids)) in
      Db.update_field db ~set:"S" oid ~field:"repfield"
        (Value.VString (Printf.sprintf "%020d" i));
      if i mod 10 = 0 then begin
        Repl.Master.pump m;
        List.iter (fun r -> ignore (Repl.Replica.drain r)) replicas
      end
    done;
    for _ = 1 to 3 do
      Repl.Master.pump m;
      List.iter (fun r -> ignore (Repl.Replica.drain r)) replicas
    done;
    let target =
      match Db.wal db with Some w -> Wal.last_lsn w | None -> 0L
    in
    let caught_up =
      List.for_all
        (fun r -> Int64.equal (Repl.Replica.last_applied r) target)
        replicas
    in
    let capacity =
      List.fold_left
        (fun acc r -> acc +. node_rate (Repl.Replica.db r))
        0.0 replicas
    in
    let st = Db.stats db in
    (capacity, caught_up, st.Stats.frames_shipped, st.Stats.acks_waited)
  in
  let rows = ref [] in
  List.iter
    (fun (mode_name, mode) ->
      let base = ref 0.0 in
      List.iter
        (fun n ->
          let capacity, caught_up, shipped, acks = run_config mode n in
          if n = 1 then base := capacity;
          add_gate_metrics "repl"
            [ (Printf.sprintf "repl_%s_reads_%d" mode_name n, int_of_float capacity) ];
          rows :=
            [
              mode_name;
              string_of_int n;
              (if caught_up then "yes" else "NO");
              T.fixed 0 capacity;
              T.fixed 2 (capacity /. !base);
              string_of_int shipped;
              string_of_int acks;
            ]
            :: !rows)
        [ 1; 2; 4 ])
    [ ("async", Repl.Master.default_mode); ("ack", Repl.Master.Ack) ];
  T.print
    ~header:
      [
        "mode"; "replicas"; "caught up"; "agg reads/s"; "speedup";
        "frames shipped"; "acks waited";
      ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* M1: background maintenance - foreground cost of online reconfig     *)

let maint_bench () =
  section "M1: online reconfiguration - foreground degradation vs throttle";
  Printf.printf
    "(4 clients run the update mix over a replicated |S|=200, f=4 durable\n\
    \ database while reconfiguration churns in the background: whenever the\n\
    \ maintenance queue drains, the path is online-unreplicated or online\n\
    \ re-replicated, so teardown and backfill jobs run for the whole bench;\n\
    \ one job quantum of q pages is pumped per client turn.  q=0 is the\n\
    \ baseline: no maintenance, the declaration just stays active.  The\n\
    \ foreground columns show what the churn costs concurrent writers)\n\n";
  let rep_path = Path.parse "R.sref.repfield" in
  let rows = ref [] in
  let fg_io = ref [] and cycles_done = ref [] in
  let pages_q1 = ref 0 and yields_total = ref 0 in
  List.iter
    (fun quantum ->
      let spec =
        {
          Gen.default_spec with
          Gen.s_count = 200;
          sharing = 4;
          strategy = Params.Inplace;
          frames = 24;
          seed = 31;
          durable = true;
        }
      in
      let built = Gen.build spec in
      let db = built.Gen.db in
      let cycles = ref 0 in
      let on_turn _ =
        if quantum > 0 then
          if Db.maint_pending db > 0 then ignore (Db.maint_step ~quantum db)
          else if Db.active_txn_count db > 0 then
            (* queue drained mid-run: issue the next reconfiguration (the
               open transactions force the online paths) *)
            match Db.replication_state db rep_path with
            | Some Schema.Active -> Db.unreplicate db rep_path
            | None ->
                incr cycles;
                Db.replicate db ~strategy:Schema.Inplace rep_path
            | Some _ -> ()
      in
      let before = Stats.copy (Db.stats db) in
      let t0 = Unix.gettimeofday () in
      let res =
        Multi.run ~abort_prob:0.02 ~on_turn ~clients:4 ~txns_per_client:32
          ~ops_per_txn:6 ~mix:Multi.update_mix ~seed:53 built
      in
      let wall = Unix.gettimeofday () -. t0 in
      Db.maint_drain db;
      Db.check_integrity db;
      let d = Stats.diff (Db.stats db) before in
      fg_io := (quantum, res.Multi.committed_io) :: !fg_io;
      cycles_done := (quantum, !cycles) :: !cycles_done;
      if quantum = 1 then pages_q1 := d.Stats.maint_pages_walked;
      yields_total := !yields_total + d.Stats.maint_lock_yields;
      rows :=
        [
          (if quantum = 0 then "0 (idle)" else string_of_int quantum);
          string_of_int res.Multi.commits;
          T.fixed 0 (float_of_int res.Multi.commits /. wall);
          string_of_int res.Multi.committed_io;
          string_of_int res.Multi.blocked_turns;
          string_of_int !cycles;
          string_of_int d.Stats.maint_steps;
          string_of_int d.Stats.maint_pages_walked;
          string_of_int d.Stats.maint_lock_yields;
        ]
        :: !rows)
    [ 0; 1; 4; 16 ];
  T.print
    ~header:
      [
        "quantum";
        "commits";
        "txn/s";
        "fg I/O";
        "blocked";
        "cycles";
        "steps";
        "pages";
        "yields";
      ]
    (List.rev !rows);
  add_gate_metrics "maint"
    ([ ("maint_pages_q1", !pages_q1); ("maint_yields", !yields_total) ]
    @ List.map
        (fun (q, io) -> (Printf.sprintf "maint_fg_io_q%d" q, io))
        !fg_io
    @ List.map
        (fun (q, c) -> (Printf.sprintf "maint_cycles_q%d" q, c))
        (List.filter (fun (q, _) -> q > 0) !cycles_done))

(* ------------------------------------------------------------------ *)
(* F1: failover - write-unavailability blip vs detector deadline       *)

let chaos_bench () =
  section "F1: failover - write-unavailability blip vs detector deadline";
  Printf.printf
    "(a genesis master streams to a successor and one more replica over a\n\
    \ manual clock; after a steady phase the master crashes with its async\n\
    \ buffer unflushed.  Every op-slot advances the clock one tick; the\n\
    \ blip is the count of slots in which no live master could accept the\n\
    \ write - detection, bounded by the successor's dead_after deadline,\n\
    \ plus an O(1) promotion slot.  The survivor then re-attaches to the\n\
    \ promoted master and both nodes must converge byte-identical)\n\n";
  let module Repl = Fieldrep_repl.Repl in
  let module Transport = Fieldrep_repl.Transport in
  let module Clock = Fieldrep_repl.Clock in
  let digest db =
    Pager.flush (Db.pager db);
    let disk = Pager.disk (Db.pager db) in
    Disk.file_ids disk
    |> List.sort compare
    |> List.map (fun id ->
           let n = Disk.page_count disk id in
           let b = Buffer.create 64 in
           for page = 0 to n - 1 do
             Buffer.add_string b
               (Digest.to_hex
                  (Digest.bytes (Disk.dump_page disk ~file:id ~page)))
           done;
           (id, n, Digest.to_hex (Digest.string (Buffer.contents b))))
  in
  let run_failover dead_after =
    let clk = Clock.manual () in
    let clock = Clock.of_manual clk in
    let liveness =
      {
        Repl.heartbeat_every = max 1 (dead_after / 5);
        suspect_after = dead_after / 2;
        dead_after;
      }
    in
    let built =
      Gen.build
        {
          Gen.default_spec with
          Gen.s_count = 64;
          sharing = 2;
          strategy = Params.Inplace;
          page_size = 1024;
          frames = 64;
          seed = 41;
          durable = true;
        }
    in
    let mdb = built.Gen.db in
    let img = Filename.temp_file "fieldrep_bench_chaos" ".img" in
    Db.checkpoint mdb img;
    let m1 =
      Repl.Master.create
        ~mode:(Repl.Master.Async { buffer_bytes = 2048 })
        ~clock ~liveness mdb
    in
    let mk_replica m =
      let ma, rb, _, _ = Transport.loopback () in
      let r = Repl.Replica.connect ~clock ~liveness rb in
      ignore
        (Repl.Master.attach ~pump:(fun () -> ignore (Repl.Replica.drain r)) m ma);
      ignore (Repl.Replica.drain r);
      r
    in
    let a = mk_replica m1 in
    let b = mk_replica m1 in
    let s_oids db =
      let acc = ref [] in
      Db.scan db ~set:"S" (fun oid _ -> acc := oid :: !acc);
      Array.of_list !acc
    in
    let rng = Splitmix.create (91 + dead_after) in
    let write db oids i =
      Db.update_field db ~set:"S"
        oids.(Splitmix.int rng (Array.length oids))
        ~field:"repfield"
        (Value.VString (Printf.sprintf "%020d" i));
      Clock.advance clk ~by:1
    in
    let oids1 = s_oids mdb in
    for i = 1 to 100 do
      write mdb oids1 i;
      if i mod 5 = 0 then begin
        Repl.Master.tick m1;
        ignore (Repl.Replica.drain a);
        ignore (Repl.Replica.drain b);
        Repl.Replica.tick a;
        Repl.Replica.tick b
      end
    done;
    (* the crash: the master goes silent; each op-slot with no live master
       counts toward the blip until the successor's detector fires and the
       promotion lands *)
    let blip = ref 0 in
    let m2 = ref None in
    while !m2 = None do
      incr blip;
      Clock.advance clk ~by:1;
      Repl.Replica.tick a;
      Repl.Replica.tick b;
      if Repl.Replica.master_state a = Repl.Dead then begin
        let walf = Filename.temp_file "fieldrep_bench_chaos" ".wal" in
        Sys.remove walf;
        m2 :=
          Some
            (Repl.Replica.promote ~mode:Repl.Master.default_mode ~clock
               ~liveness a ~wal_path:walf)
      end
    done;
    let m2 = Option.get !m2 in
    let m2db = Repl.Replica.db a in
    let ma, rb, _, _ = Transport.loopback () in
    Repl.Replica.reconnect b rb;
    ignore
      (Repl.Master.attach ~pump:(fun () -> ignore (Repl.Replica.drain b)) m2 ma);
    ignore (Repl.Replica.drain b);
    let oids2 = s_oids m2db in
    for i = 101 to 200 do
      write m2db oids2 i;
      if i mod 5 = 0 then begin
        Repl.Master.pump m2;
        ignore (Repl.Replica.drain b)
      end
    done;
    for _ = 1 to 5 do
      Repl.Master.pump m2;
      ignore (Repl.Replica.drain b)
    done;
    let converged = digest m2db = digest (Repl.Replica.db b) in
    let st = Db.stats m2db in
    Sys.remove img;
    ( !blip,
      converged,
      st.Stats.failovers,
      (Db.stats (Repl.Replica.db b)).Stats.reconnects )
  in
  let rows = ref [] in
  let tight_blip = ref 0 in
  List.iter
    (fun dead_after ->
      let blip, converged, failovers, reconnects = run_failover dead_after in
      if dead_after = 40 then tight_blip := blip;
      add_gate_metrics "chaos"
        [ (Printf.sprintf "chaos_blip_da%d" dead_after, blip) ];
      rows :=
        [
          string_of_int dead_after;
          string_of_int blip;
          T.fixed 2 (float_of_int blip /. float_of_int dead_after);
          (if converged then "yes" else "NO");
          string_of_int failovers;
          string_of_int reconnects;
        ]
        :: !rows)
    [ 40; 80; 160 ];
  add_gate_metrics "chaos" [ ("chaos_blip_ops", !tight_blip) ];
  T.print
    ~header:
      [
        "dead_after"; "blip (op-slots)"; "blip/deadline"; "converged";
        "failovers"; "reconnects";
      ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* IO1: real-file backend — measured fsyncs and million-object scale   *)

let io_bench () =
  section "IO1: real files — fsync amortization and million-object zipf scale";
  Printf.printf
    "(pages live in real on-disk files and every WAL group commit is an\n\
    \ honest fsync(2), so the numbers below are measured wall-clock I/O\n\
    \ costs, not simulated counters)\n\n";
  (* Part 1: the same 8-client transactional workload, once with group
     commit (one fsync per durability point) and once with the WAL flush
     limit dropped to a single byte so every append pays its own fsync —
     the baseline a database without group commit would live with. *)
  Printf.printf "--- WAL group commit vs fsync-per-append (8 clients) ---\n";
  let run_mode ~label ~wal_flush_limit =
    let spec =
      {
        Gen.default_spec with
        Gen.s_count = 200;
        sharing = 4;
        frames = 24;
        seed = 29;
        durable = true;
        backend = Some (Db.File None);
        wal_fsync = Some true;
        wal_flush_limit;
      }
    in
    let built = Gen.build spec in
    let w = Option.get (Db.wal built.Gen.db) in
    let wa0 = Wal.appended w and ws0 = Wal.fsyncs w in
    let t0 = Unix.gettimeofday () in
    let res =
      Multi.run ~abort_prob:0.02 ~clients:8 ~txns_per_client:8 ~ops_per_txn:6
        ~mix:Multi.update_mix ~seed:49 built
    in
    let wall = Unix.gettimeofday () -. t0 in
    let wa = Wal.appended w - wa0 and ws = Wal.fsyncs w - ws0 in
    Db.close built.Gen.db;
    (label, res.Multi.commits, wa, ws, wall)
  in
  let grouped = run_mode ~label:"group commit" ~wal_flush_limit:None in
  let solo = run_mode ~label:"fsync per append" ~wal_flush_limit:(Some 1) in
  let row (label, commits, wa, ws, wall) =
    [
      label;
      string_of_int commits;
      string_of_int wa;
      string_of_int ws;
      T.fixed 2 (float_of_int ws /. float_of_int (max 1 commits));
      T.fixed 1 (wall *. 1000.0);
      T.fixed 0 (float_of_int commits /. wall);
    ]
  in
  T.print
    ~header:
      [
        "mode"; "commits"; "wal appends"; "fsyncs"; "fsync/txn"; "wall ms";
        "txn/s";
      ]
    [ row grouped; row solo ];
  let (_, _, wa_grouped, ws_grouped, _) = grouped in
  let (_, _, _, ws_solo, _) = solo in
  add_gate_metrics "io"
    [
      ("io_appends_grouped", wa_grouped);
      ("io_fsyncs_grouped", ws_grouped);
      ("io_fsyncs_solo", ws_solo);
    ];
  (* Part 2: a zipf(0.9)-skewed read mix over a million objects with the
     buffer pool capped far below the data — the regime the in-memory
     backend could never make honest, because "misses" cost nothing. *)
  Printf.printf "\n--- zipf(0.9) reads over 10^6 objects, pool << data ---\n";
  let count = 1_000_000 and frames = 1024 and reads = 200_000 in
  let t0 = Unix.gettimeofday () in
  let db, oids = Gen.build_large ~count ~frames ~backend:(Db.File None) () in
  let build_wall = Unix.gettimeofday () -. t0 in
  let data_pages = Db.set_pages db "Big" in
  let stats = Db.stats db in
  let before = Stats.copy stats in
  let rng = Splitmix.create 91 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reads do
    ignore (Db.get db ~set:"Big" oids.(Splitmix.zipf rng ~n:count ~theta:0.9))
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let d = Stats.diff stats before in
  let phys = d.Stats.page_reads in
  let hit_rate =
    float_of_int d.Stats.buffer_hits
    /. float_of_int (max 1 (d.Stats.buffer_hits + phys))
  in
  T.print
    ~header:
      [
        "objects"; "data pages"; "pool frames"; "pool %"; "build s"; "reads";
        "phys reads"; "hit rate"; "wall ms"; "reads/s";
      ]
    [
      [
        string_of_int count;
        string_of_int data_pages;
        string_of_int frames;
        T.fixed 1 (100.0 *. float_of_int frames /. float_of_int data_pages);
        T.fixed 1 build_wall;
        string_of_int reads;
        string_of_int phys;
        T.fixed 3 hit_rate;
        T.fixed 1 (wall *. 1000.0);
        T.fixed 0 (float_of_int reads /. wall);
      ];
    ];
  Db.close db;
  add_gate_metrics "io"
    [
      ("io_zipf_objects", count);
      ("io_zipf_data_pages", data_pages);
      ("io_zipf_pool_frames", frames);
      ("io_zipf_phys_reads", phys);
    ]

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let all_benches =
  [
    ("figure-11", fun () -> figure Params.Unclustered 11);
    ("table-12", fun () -> table Params.Unclustered 12);
    ("figure-13", fun () -> figure Params.Clustered 13);
    ("table-14", fun () -> table Params.Clustered 14);
    ("validate", validate);
    ("figure-11-measured", figure11_measured);
    ("ablate-small-links", ablate_small_links);
    ("ablate-collapse", ablate_collapse);
    ("ablate-lazy", ablate_lazy);
    ("ablate-cluster-links", ablate_cluster_links);
    ("depth-sweep", depth_sweep);
    ("path-index", path_index);
    ("k-sweep", k_sweep);
    ("warm-cache", warm_cache);
    ("space", space);
    ("micro", micro);
    ("wal", wal_overhead);
    ("txn", txn_bench);
    ("scrub", scrub_bench);
    ("p1", p1);
    ("repl", repl_bench);
    ("maint", maint_bench);
    ("chaos", chaos_bench);
    ("io", io_bench);
  ]

(* Machine-readable results: one object per scenario run, with wall time and
   the process-wide physical page I/O it caused (Stats.grand_total_io is
   monotonic across every database the scenario builds). *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path results =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\n  \"benchmarks\": [\n";
      List.iteri
        (fun i
             ( name,
               wall,
               io,
               (cf, sp, rp, dr, rr),
               (wa, wf),
               (fs, fa, aw),
               (pd, ad, hm, fo, rc) ) ->
          let extras =
            match List.assoc_opt name !gate_metrics with
            | None -> ""
            | Some kvs ->
                String.concat ""
                  (List.map (fun (k, v) -> Printf.sprintf ", \"%s\": %d" k v) kvs)
          in
          Printf.fprintf oc
            "    {\"name\": \"%s\", \"wall_seconds\": %.6f, \"total_io\": %d, \
             \"checksum_failures\": %d, \"scrub_pages\": %d, \"repairs\": %d, \
             \"degraded_reads\": %d, \"read_retries\": %d, \"wal_appends\": %d, \
             \"wal_flushes\": %d, \"frames_shipped\": %d, \"frames_applied\": \
             %d, \"acks_waited\": %d, \"peer_deaths\": %d, \"ack_demotions\": \
             %d, \"heartbeats_missed\": %d, \"failovers\": %d, \"reconnects\": \
             %d%s}%s\n"
            (json_escape name) wall io cf sp rp dr rr wa wf fs fa aw pd ad hm
            fo rc extras
            (if i = List.length results - 1 then "" else ","))
        results;
      output_string oc "  ]\n}\n")

let () =
  let rec parse names json = function
    | [] -> (List.rev names, json)
    | "--json" :: path :: rest -> parse names (Some path) rest
    | [ "--json" ] ->
        prerr_endline "--json requires a path";
        exit 1
    | name :: rest -> parse (name :: names) json rest
  in
  let names, json_path = parse [] None (List.tl (Array.to_list Sys.argv)) in
  let requested = if names = [] then List.map fst all_benches else names in
  Printf.printf
    "Field replication in an object-oriented DBMS - benchmark harness\n\
     Reproduces Shekita & Carey (1989), TR #817.\n";
  let results =
    List.map
      (fun name ->
        match List.assoc_opt name all_benches with
        | Some f ->
            let t0 = Unix.gettimeofday () in
            let io0 = Stats.grand_total_io () in
            let cf0, sp0, rp0, dr0, rr0 = Stats.grand_robustness () in
            let wa0, wf0 = Stats.grand_wal () in
            let fs0, fa0, aw0 = Stats.grand_repl () in
            let pd0, ad0, hm0, fo0, rc0 = Stats.grand_failover () in
            f ();
            let cf, sp, rp, dr, rr = Stats.grand_robustness () in
            let wa, wf = Stats.grand_wal () in
            let fs, fa, aw = Stats.grand_repl () in
            let pd, ad, hm, fo, rc = Stats.grand_failover () in
            ( name,
              Unix.gettimeofday () -. t0,
              Stats.grand_total_io () - io0,
              (cf - cf0, sp - sp0, rp - rp0, dr - dr0, rr - rr0),
              (wa - wa0, wf - wf0),
              (fs - fs0, fa - fa0, aw - aw0),
              (pd - pd0, ad - ad0, hm - hm0, fo - fo0, rc - rc0) )
        | None ->
            Printf.eprintf "unknown bench %S; available: %s\n" name
              (String.concat ", " (List.map fst all_benches));
            exit 1)
      requested
  in
  Option.iter (fun path -> write_json path results) json_path
