(* Self-tests for fieldrep_lint: each rule must fire on its bad fixture and
   stay quiet on the good one, under the virtual path that puts the fixture
   in the rule's scope.  Fixtures only need to parse, not typecheck. *)

module Core = Fieldrep_lint_core
module Driver = Core.Driver
module Diag = Core.Diag
module Allowlist = Core.Allowlist

let lint ?(allow = Allowlist.empty) ~as_path fixture =
  Driver.lint_file ~as_path ~allow (Filename.concat "fixtures" fixture)

let count rule ds =
  List.length (List.filter (fun (d : Diag.t) -> d.Diag.rule = rule) ds)

let check_count what expected rule ds = Alcotest.(check int) what expected (count rule ds)

let check_clean what ds =
  Alcotest.(check (list string)) what [] (List.map Diag.to_string ds)

(* ---------------- L1 ---------------- *)

let test_l1_bad () =
  let ds = lint ~as_path:"lib/replication/fixture.ml" "l1_bad.ml" in
  (* Three alias definitions plus three use sites. *)
  check_count "guarded internals flagged" 6 "L1" ds

let test_l1_open_bad () =
  let ds = lint ~as_path:"lib/query/fixture.ml" "l1_open_bad.ml" in
  Alcotest.(check bool) "open-based access flagged" true (count "L1" ds >= 1)

let test_l1_txn_edge () =
  let ds = lint ~as_path:"lib/txn/fixture.ml" "l1_txn_bad.ml" in
  Alcotest.(check bool) "txn back-edge flagged" true (count "L1" ds >= 1)

let test_l1_good () =
  check_clean "owning directory may use internals"
    (lint ~as_path:"lib/storage/fixture.ml" "l1_good.ml")

let test_l1_out_of_scope () =
  (* The same violations outside lib/ are not L1's business. *)
  let ds = lint ~as_path:"bench/fixture.ml" "l1_bad.ml" in
  check_count "bench is out of L1 scope" 0 "L1" ds

(* ---------------- P1 ---------------- *)

let test_p1_bad () =
  let ds = lint ~as_path:"lib/storage/fixture.ml" "p1_bad.ml" in
  check_count "leaked pins flagged" 2 "P1" ds

let test_p1_good () =
  check_clean "all release shapes accepted"
    (lint ~as_path:"lib/storage/fixture.ml" "p1_good.ml")

(* ---------------- D1 ---------------- *)

let test_d1_bad () =
  let ds = lint ~as_path:"lib/core/fixture.ml" "d1_bad.ml" in
  check_count "unsynced commit append flagged" 1 "D1" ds

let test_d1_good () =
  check_clean "synced append and plain records accepted"
    (lint ~as_path:"lib/core/fixture.ml" "d1_good.ml")

(* ---------------- E1 ---------------- *)

let test_e1_bad () =
  let ds = lint ~as_path:"lib/core/fixture.ml" "e1_bad.ml" in
  check_count "catch-alls flagged" 3 "E1" ds

let test_e1_good () =
  check_clean "specific and re-raising handlers accepted"
    (lint ~as_path:"lib/core/fixture.ml" "e1_good.ml")

(* ---------------- F1 ---------------- *)

let test_f1_bad () =
  let ds = lint ~as_path:"lib/core/fixture.ml" "f1_bad.ml" in
  (* hd, nth, Option.get, unsafe_get, Hashtbl.find, Obj.magic, %identity *)
  check_count "partial operations flagged" 7 "F1" ds

let test_f1_good () =
  check_clean "total spellings accepted"
    (lint ~as_path:"lib/core/fixture.ml" "f1_good.ml")

let test_f1_out_of_scope () =
  let ds = lint ~as_path:"bench/fixture.ml" "f1_bad.ml" in
  check_count "bench is out of F1 scope" 0 "F1" ds

(* ---------------- S1 ---------------- *)

let test_s1_bad () =
  let ds = lint ~as_path:"lib/storage/fixture.ml" "s1_bad.ml" in
  (* mutable field, Hashtbl field, module-level ref, module-level table *)
  check_count "shared mutable state flagged" 4 "S1" ds

let test_s1_good () =
  check_clean "Atomic/Mutex/DLS and locals accepted"
    (lint ~as_path:"lib/storage/fixture.ml" "s1_good.ml")

let test_s1_out_of_scope () =
  let ds = lint ~as_path:"bench/fixture.ml" "s1_bad.ml" in
  check_count "bench is out of S1 scope" 0 "S1" ds

let test_s1_protected_by () =
  let allow =
    Allowlist.parse_string
      "[protected_by]\nPool_latch = [\"lib/storage/fixture.ml\"]\n"
  in
  let ds = lint ~allow ~as_path:"lib/storage/fixture.ml" "s1_bad.ml" in
  check_count "a protected_by claim answers S1" 0 "S1" ds

let test_s1_protected_by_wrong_rule () =
  (* A protected_by entry is an S1 answer only — it must not leak into
     suppressing other rules on the same file. *)
  let allow =
    Allowlist.parse_string
      "[protected_by]\nPool_latch = [\"lib/core/fixture.ml\"]\n"
  in
  let ds = lint ~allow ~as_path:"lib/core/fixture.ml" "f1_bad.ml" in
  Alcotest.(check bool) "F1 still fires" true (count "F1" ds > 0)

(* ---------------- O1 ---------------- *)

let test_o1_bad () =
  let ds = lint ~as_path:"lib/core/fixture.ml" "o1_bad.ml" in
  (* one direct inversion, one through the call graph *)
  check_count "reverse-order acquisitions flagged" 2 "O1" ds

let test_o1_good () =
  check_clean "forward order, release spans and isolated boundary accepted"
    (lint ~as_path:"lib/core/fixture.ml" "o1_good.ml")

(* ---------------- C1 ---------------- *)

let test_c1_bad () =
  let ds = lint ~as_path:"lib/core/fixture.ml" "c1_bad.ml" in
  check_count "bare counter increments flagged" 2 "C1" ds

let test_c1_good () =
  check_clean "Stats.bump/add and non-Stats fields accepted"
    (lint ~as_path:"lib/core/fixture.ml" "c1_good.ml")

let test_c1_stats_exempt () =
  (* The blessed mutation point itself is the one file allowed to assign
     counter fields. *)
  let ds = lint ~as_path:"lib/storage/stats.ml" "c1_bad.ml" in
  check_count "stats.ml is the blessed mutation point" 0 "C1" ds

(* ---------------- A1: unused allowlist entries ---------------- *)

let test_allowlist_unused () =
  let allow =
    Allowlist.parse_string
      "F1 = [\"lib/core/fixture.ml\"]\nP1 = [\"lib/storage/other.ml\"]\n"
  in
  let ds = lint ~allow ~as_path:"lib/core/fixture.ml" "f1_bad.ml" in
  check_count "live entry suppresses" 0 "F1" ds;
  match Driver.unused_diags allow with
  | [ d ] ->
      Alcotest.(check string) "rule" "A1" d.Diag.rule;
      Alcotest.(check int) "stale entry's lint.toml line" 2 (Diag.line d)
  | ds ->
      Alcotest.fail
        (Printf.sprintf "expected exactly one unused entry, got %d" (List.length ds))

(* ---------------- suppression and allowlist ---------------- *)

let test_suppress_site () =
  let ds = lint ~as_path:"lib/core/fixture.ml" "suppress.ml" in
  check_count "only the wrong-rule site survives" 1 "F1" ds;
  match ds with
  | [ d ] -> Alcotest.(check int) "surviving site line" 7 (Diag.line d)
  | _ -> Alcotest.fail "expected exactly one diagnostic"

let test_suppress_file () =
  check_clean "floating attribute silences the whole file"
    (lint ~as_path:"lib/core/fixture.ml" "suppress_file.ml")

let test_allowlist_file () =
  let allow = Allowlist.parse_string {|F1 = ["lib/core/fixture.ml"]|} in
  let ds = lint ~allow ~as_path:"lib/core/fixture.ml" "f1_bad.ml" in
  check_count "whole-file allowlist entry" 0 "F1" ds

let test_allowlist_line () =
  let allow = Allowlist.parse_string {|F1 = ["lib/core/fixture.ml:3"]|} in
  let ds = lint ~allow ~as_path:"lib/core/fixture.ml" "f1_bad.ml" in
  check_count "line-scoped entry spares one site" 6 "F1" ds

let test_allowlist_multiline () =
  let allow =
    Allowlist.parse_string
      "# header\n[allow]\nF1 = [\n  \"lib/core/fixture.ml\", # why\n]\n"
  in
  let ds = lint ~allow ~as_path:"lib/core/fixture.ml" "f1_bad.ml" in
  check_count "multi-line list entry parses" 0 "F1" ds

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "fieldrep_lint"
    [
      ( "L1",
        [
          tc "bad" test_l1_bad;
          tc "open-bad" test_l1_open_bad;
          tc "txn-edge" test_l1_txn_edge;
          tc "good" test_l1_good;
          tc "out-of-scope" test_l1_out_of_scope;
        ] );
      ("P1", [ tc "bad" test_p1_bad; tc "good" test_p1_good ]);
      ("D1", [ tc "bad" test_d1_bad; tc "good" test_d1_good ]);
      ("E1", [ tc "bad" test_e1_bad; tc "good" test_e1_good ]);
      ( "F1",
        [
          tc "bad" test_f1_bad;
          tc "good" test_f1_good;
          tc "out-of-scope" test_f1_out_of_scope;
        ] );
      ( "S1",
        [
          tc "bad" test_s1_bad;
          tc "good" test_s1_good;
          tc "out-of-scope" test_s1_out_of_scope;
          tc "protected-by" test_s1_protected_by;
          tc "protected-by-wrong-rule" test_s1_protected_by_wrong_rule;
        ] );
      ("O1", [ tc "bad" test_o1_bad; tc "good" test_o1_good ]);
      ( "C1",
        [
          tc "bad" test_c1_bad;
          tc "good" test_c1_good;
          tc "stats-exempt" test_c1_stats_exempt;
        ] );
      ( "suppression",
        [
          tc "site-attribute" test_suppress_site;
          tc "file-attribute" test_suppress_file;
          tc "allowlist-file" test_allowlist_file;
          tc "allowlist-line" test_allowlist_line;
          tc "allowlist-multiline" test_allowlist_multiline;
          tc "allowlist-unused" test_allowlist_unused;
        ] );
    ]
