(* Self-tests for fieldrep_lint: each rule must fire on its bad fixture and
   stay quiet on the good one, under the virtual path that puts the fixture
   in the rule's scope.  Fixtures only need to parse, not typecheck. *)

module Core = Fieldrep_lint_core
module Driver = Core.Driver
module Diag = Core.Diag
module Allowlist = Core.Allowlist

let lint ?(allow = Allowlist.empty) ~as_path fixture =
  Driver.lint_file ~as_path ~allow (Filename.concat "fixtures" fixture)

let count rule ds =
  List.length (List.filter (fun (d : Diag.t) -> d.Diag.rule = rule) ds)

let check_count what expected rule ds = Alcotest.(check int) what expected (count rule ds)

let check_clean what ds =
  Alcotest.(check (list string)) what [] (List.map Diag.to_string ds)

(* ---------------- L1 ---------------- *)

let test_l1_bad () =
  let ds = lint ~as_path:"lib/replication/fixture.ml" "l1_bad.ml" in
  (* Three alias definitions plus three use sites. *)
  check_count "guarded internals flagged" 6 "L1" ds

let test_l1_open_bad () =
  let ds = lint ~as_path:"lib/query/fixture.ml" "l1_open_bad.ml" in
  Alcotest.(check bool) "open-based access flagged" true (count "L1" ds >= 1)

let test_l1_txn_edge () =
  let ds = lint ~as_path:"lib/txn/fixture.ml" "l1_txn_bad.ml" in
  Alcotest.(check bool) "txn back-edge flagged" true (count "L1" ds >= 1)

let test_l1_good () =
  check_clean "owning directory may use internals"
    (lint ~as_path:"lib/storage/fixture.ml" "l1_good.ml")

let test_l1_out_of_scope () =
  (* The same violations outside lib/ are not L1's business. *)
  let ds = lint ~as_path:"bench/fixture.ml" "l1_bad.ml" in
  check_count "bench is out of L1 scope" 0 "L1" ds

(* ---------------- P1 ---------------- *)

let test_p1_bad () =
  let ds = lint ~as_path:"lib/storage/fixture.ml" "p1_bad.ml" in
  check_count "leaked pins flagged" 2 "P1" ds

let test_p1_good () =
  check_clean "all release shapes accepted"
    (lint ~as_path:"lib/storage/fixture.ml" "p1_good.ml")

(* ---------------- D1 ---------------- *)

let test_d1_bad () =
  let ds = lint ~as_path:"lib/core/fixture.ml" "d1_bad.ml" in
  check_count "unsynced commit append flagged" 1 "D1" ds

let test_d1_good () =
  check_clean "synced append and plain records accepted"
    (lint ~as_path:"lib/core/fixture.ml" "d1_good.ml")

(* ---------------- E1 ---------------- *)

let test_e1_bad () =
  let ds = lint ~as_path:"lib/core/fixture.ml" "e1_bad.ml" in
  check_count "catch-alls flagged" 3 "E1" ds

let test_e1_good () =
  check_clean "specific and re-raising handlers accepted"
    (lint ~as_path:"lib/core/fixture.ml" "e1_good.ml")

(* ---------------- F1 ---------------- *)

let test_f1_bad () =
  let ds = lint ~as_path:"lib/core/fixture.ml" "f1_bad.ml" in
  (* hd, nth, Option.get, unsafe_get, Hashtbl.find, Obj.magic, %identity *)
  check_count "partial operations flagged" 7 "F1" ds

let test_f1_good () =
  check_clean "total spellings accepted"
    (lint ~as_path:"lib/core/fixture.ml" "f1_good.ml")

let test_f1_out_of_scope () =
  let ds = lint ~as_path:"bench/fixture.ml" "f1_bad.ml" in
  check_count "bench is out of F1 scope" 0 "F1" ds

(* ---------------- suppression and allowlist ---------------- *)

let test_suppress_site () =
  let ds = lint ~as_path:"lib/core/fixture.ml" "suppress.ml" in
  check_count "only the wrong-rule site survives" 1 "F1" ds;
  match ds with
  | [ d ] -> Alcotest.(check int) "surviving site line" 7 (Diag.line d)
  | _ -> Alcotest.fail "expected exactly one diagnostic"

let test_suppress_file () =
  check_clean "floating attribute silences the whole file"
    (lint ~as_path:"lib/core/fixture.ml" "suppress_file.ml")

let test_allowlist_file () =
  let allow = Allowlist.parse_string {|F1 = ["lib/core/fixture.ml"]|} in
  let ds = lint ~allow ~as_path:"lib/core/fixture.ml" "f1_bad.ml" in
  check_count "whole-file allowlist entry" 0 "F1" ds

let test_allowlist_line () =
  let allow = Allowlist.parse_string {|F1 = ["lib/core/fixture.ml:3"]|} in
  let ds = lint ~allow ~as_path:"lib/core/fixture.ml" "f1_bad.ml" in
  check_count "line-scoped entry spares one site" 6 "F1" ds

let test_allowlist_multiline () =
  let allow =
    Allowlist.parse_string
      "# header\n[allow]\nF1 = [\n  \"lib/core/fixture.ml\", # why\n]\n"
  in
  let ds = lint ~allow ~as_path:"lib/core/fixture.ml" "f1_bad.ml" in
  check_count "multi-line list entry parses" 0 "F1" ds

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "fieldrep_lint"
    [
      ( "L1",
        [
          tc "bad" test_l1_bad;
          tc "open-bad" test_l1_open_bad;
          tc "txn-edge" test_l1_txn_edge;
          tc "good" test_l1_good;
          tc "out-of-scope" test_l1_out_of_scope;
        ] );
      ("P1", [ tc "bad" test_p1_bad; tc "good" test_p1_good ]);
      ("D1", [ tc "bad" test_d1_bad; tc "good" test_d1_good ]);
      ("E1", [ tc "bad" test_e1_bad; tc "good" test_e1_good ]);
      ( "F1",
        [
          tc "bad" test_f1_bad;
          tc "good" test_f1_good;
          tc "out-of-scope" test_f1_out_of_scope;
        ] );
      ( "suppression",
        [
          tc "site-attribute" test_suppress_site;
          tc "file-attribute" test_suppress_file;
          tc "allowlist-file" test_allowlist_file;
          tc "allowlist-line" test_allowlist_line;
          tc "allowlist-multiline" test_allowlist_multiline;
        ] );
    ]
