(* Linted as lib/core/fixture.ml: acquisitions along the canonical order,
   plus a node boundary that resets the held-context. *)
module Lockdep = Fieldrep_util.Lockdep

(* Forward order: Maint_job, then Txn_lock, then Pool_pin, then sync. *)
let forward () =
  Lockdep.with_held Lockdep.Maint_job @@ fun () ->
  Lockdep.acquire Lockdep.Txn_lock;
  Lockdep.acquire Lockdep.Pool_pin;
  Lockdep.with_held Lockdep.Wal_sync (fun () -> ());
  Lockdep.release Lockdep.Pool_pin;
  Lockdep.release Lockdep.Txn_lock

(* A release ends the span: Pool_pin is gone before Txn_lock arrives. *)
let released () =
  Lockdep.acquire Lockdep.Pool_pin;
  Lockdep.release Lockdep.Pool_pin;
  Lockdep.acquire Lockdep.Txn_lock;
  Lockdep.release Lockdep.Txn_lock

(* A replica apply is another node: locks held here must not combine
   with what it acquires inside. *)
let takes_txn locks = Lockdep.acquire Lockdep.Txn_lock; ignore locks

let loopback locks =
  Lockdep.with_held Lockdep.Wal_sync @@ fun () ->
  Lockdep.isolated @@ fun () ->
  takes_txn locks
