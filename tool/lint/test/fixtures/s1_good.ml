(* Linted as lib/storage/fixture.ml: state that is safe by construction. *)

type safe = {
  name : string;
  hits : int Atomic.t;        (* atomic slot *)
  mutable gate : Mutex.t;     (* the lock itself *)
  seed : int;
}

let total = Atomic.make 0
let slot = Domain.DLS.new_key (fun () -> 0)

let bump t =
  Atomic.incr t.hits;
  Atomic.incr total

let local () =
  (* Function-local state never crosses a domain. *)
  let acc = ref 0 in
  let seen = Hashtbl.create 8 in
  Hashtbl.replace seen 0 ();
  incr acc;
  !acc + Hashtbl.length seen + Domain.DLS.get slot
