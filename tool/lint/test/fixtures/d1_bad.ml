(* Linted as lib/core/fixture.ml: a commit record appended but never
   synced — a crash here loses an acknowledged commit. *)
module Wal = Fieldrep_wal.Wal

let commit w txn = Wal.append w (Wal.Txn_commit txn)
