(* Linted as lib/core/fixture.ml: acquisitions against the canonical
   order Maint_job -> Txn_lock -> Pool_pin -> Wal_sync. *)
module Lockdep = Fieldrep_util.Lockdep

(* Direct inversion: Maint_job taken while Pool_pin is held. *)
let direct () =
  Lockdep.acquire Lockdep.Pool_pin;
  Lockdep.acquire Lockdep.Maint_job;
  Lockdep.release Lockdep.Maint_job;
  Lockdep.release Lockdep.Pool_pin

(* Interprocedural inversion: the callee acquires Txn_lock, the caller
   already holds Wal_sync. *)
let helper locks = Lockdep.acquire Lockdep.Txn_lock; ignore locks

let caller locks =
  Lockdep.with_held Lockdep.Wal_sync @@ fun () ->
  helper locks
