(* Linted as lib/storage/fixture.ml: pins that escape. *)
module Buffer_pool = Fieldrep_storage.Buffer_pool

(* Leaked outright. *)
let leak pool ~file ~page =
  let buf = Buffer_pool.pin pool ~file ~page ~dirty:false in
  Bytes.length buf

(* Released on one match arm but not the other. *)
let leak_on_one_path pool ~file ~page cond =
  let buf = Buffer_pool.pin pool ~file ~page ~dirty:false in
  match cond with
  | true ->
      let n = Bytes.length buf in
      Buffer_pool.unpin pool ~file ~page;
      n
  | false -> 0
