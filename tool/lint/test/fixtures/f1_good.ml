(* Linted as lib/core/fixture.ml: the total spellings. *)

let first xs = match xs with x :: _ -> Some x | [] -> None
let at xs n = List.nth_opt xs n
let force o = match o with Some x -> x | None -> invalid_arg "force: None"
let safe a i = Array.get a i
let lookup tbl k = Hashtbl.find_opt tbl k
