(* Linted as lib/core/fixture.ml: the sync lands in the same definition. *)
module Wal = Fieldrep_wal.Wal

let commit w txn =
  Wal.append w (Wal.Txn_commit txn);
  Wal.sync w

(* Ordinary records are batched; no sync required. *)
let log_op w record = Wal.append w record
