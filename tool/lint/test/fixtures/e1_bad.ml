(* Linted as lib/core/fixture.ml: catch-alls that swallow everything. *)

let swallow_wildcard f = try f () with _ -> 0
let swallow_var f = try f () with _e -> 0
let swallow_in_match f = match f () with x -> x | exception _ -> 0
