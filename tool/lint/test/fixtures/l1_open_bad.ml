(* Linted as lib/query/fixture.ml: reaching a guarded internal through an
   [open] instead of an alias must be caught too. *)
open Fieldrep_storage

let read_raw fd ~page buf = Disk.read fd ~page buf
