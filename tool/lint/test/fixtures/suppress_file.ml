(* Linted as lib/core/fixture.ml: a floating attribute silences the named
   rule for the whole file. *)
[@@@lint.allow "F1"]

let first xs = List.hd xs
let at xs n = List.nth xs n
