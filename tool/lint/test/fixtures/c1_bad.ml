(* Linted as lib/core/fixture.ml: bare Stats counter increments. *)
module Stats = Fieldrep_storage.Stats

let commit s = s.Stats.txn_commits <- s.Stats.txn_commits + 1

(* Unqualified fields (resolved by type) are just as racy. *)
let record stats n = stats.Stats.objects_read <- stats.Stats.objects_read + n
