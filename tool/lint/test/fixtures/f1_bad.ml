(* Linted as lib/core/fixture.ml: the banned partial operations. *)

let first xs = List.hd xs
let at xs n = List.nth xs n
let force o = Option.get o
let fast a i = Array.unsafe_get a i
let lookup tbl k = Hashtbl.find tbl k
let cast (x : int) : bool = Obj.magic x

external unsafe_cast : int -> bool = "%identity"
