(* Linted as lib/storage/fixture.ml: unclaimed shared mutable state. *)

type cache = {
  name : string;
  mutable hits : int;                 (* mutable field: flagged *)
  table : (int, string) Hashtbl.t;    (* mutable container: flagged *)
}

(* Module-level refs and tables are process-shared. *)
let total = ref 0
let index : (string, int) Hashtbl.t = Hashtbl.create 16

let lookup c k =
  (* Local refs are domain-private: not flagged. *)
  let steps = ref 0 in
  incr steps;
  Hashtbl.find_opt c.table k
