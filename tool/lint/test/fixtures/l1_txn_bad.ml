(* Linted as lib/txn/fixture.ml: the txn -> replication back-edge. *)
module Engine = Fieldrep_replication.Engine

let poke eng = Engine.refresh_all eng
