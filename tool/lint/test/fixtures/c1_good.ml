(* Linted as lib/core/fixture.ml: counters go through the blessed API,
   and unrelated record fields stay untouched by the rule. *)
module Stats = Fieldrep_storage.Stats

let commit s = Stats.bump s Stats.Txn_commits
let record s n = Stats.add s Stats.Objects_read n

type progress = { mutable done_count : int } [@@lint.allow "S1"]

let tick p = p.done_count <- p.done_count + 1
