(* Linted as lib/core/fixture.ml: specific handlers and re-raising
   catch-alls are fine. *)

let specific f = try f () with Not_found | Invalid_argument _ -> 0

let cleanup_and_reraise f =
  try f ()
  with e ->
    print_endline "cleaning up";
    raise e
