(* Linted as lib/replication/fixture.ml: every one of these references a
   storage-stack internal from outside its owning directory. *)
module Disk = Fieldrep_storage.Disk
module Page = Fieldrep_storage.Page
module Buffer_pool = Fieldrep_storage.Buffer_pool

let read_raw fd ~page buf = Disk.read fd ~page buf
let peek buf = Page.slot_count buf
let grab pool ~file ~page = Buffer_pool.pin pool ~file ~page ~dirty:false
