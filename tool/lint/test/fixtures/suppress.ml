(* Linted as lib/core/fixture.ml: [@lint.allow] silences exactly the named
   rule at the attributed site, nothing else. *)

let first xs = (List.hd xs [@lint.allow "F1"])

(* Suppressing the wrong rule must not help. *)
let still_flagged xs = (List.hd xs [@lint.allow "E1"])

(* Binding-level suppression covers the whole body. *)
let force o = Option.get o [@@lint.allow "F1"]
