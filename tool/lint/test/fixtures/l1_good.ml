(* Linted as lib/storage/fixture.ml: the same references are fine from
   inside the owning directory, and facade modules are fine anywhere. *)
module Disk = Fieldrep_storage.Disk
module Pager = Fieldrep_storage.Pager

let read_raw fd ~page buf = Disk.read fd ~page buf
let via_facade pager ~file ~page f = Pager.with_page_read pager ~file ~page f
