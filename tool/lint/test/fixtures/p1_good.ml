(* Linted as lib/storage/fixture.ml: every blessed release shape. *)
module Buffer_pool = Fieldrep_storage.Buffer_pool
module Pager = Fieldrep_storage.Pager

(* Straight-line release. *)
let paired pool ~file ~page =
  let buf = Buffer_pool.pin pool ~file ~page ~dirty:false in
  let n = Bytes.length buf in
  Buffer_pool.unpin pool ~file ~page;
  n

(* Fun.protect with a releasing ~finally, the combinator idiom itself. *)
let protected pool ~file ~page f =
  let buf = Buffer_pool.pin pool ~file ~page ~dirty:false in
  Fun.protect
    ~finally:(fun () -> Buffer_pool.unpin pool ~file ~page)
    (fun () -> f buf)

(* Released on every match arm. *)
let all_paths pool ~file ~page cond =
  let buf = Buffer_pool.pin pool ~file ~page ~dirty:false in
  match cond with
  | true ->
      let n = Bytes.length buf in
      Buffer_pool.unpin pool ~file ~page;
      n
  | false ->
      Buffer_pool.unpin pool ~file ~page;
      0

(* Divergence counts as settling: no pin outlives a raise. *)
let raise_path pool ~file ~page cond =
  let buf = Buffer_pool.pin pool ~file ~page ~dirty:false in
  if cond then begin
    Buffer_pool.unpin pool ~file ~page;
    Bytes.length buf
  end
  else invalid_arg "raise_path"

(* The blessed combinators never trip the rule at all. *)
let blessed pager ~file ~page =
  Pager.with_page_read pager ~file ~page (fun buf -> Bytes.length buf)
