(* Scan, parse, run rules, filter by suppressions and allowlist. *)

let parse_channel ~path ic =
  let lexbuf = Lexing.from_channel ic in
  Location.init lexbuf path;
  Parse.implementation lexbuf

let parse_error_diag path loc =
  { Diag.rule = "parse-error"; loc; message = path ^ ": does not parse" }

(* [as_path] lets the self-tests lint a fixture as if it lived somewhere in
   the repo (rule scoping is path-based); it is also how scanned files are
   reported repo-relative. *)
let lint_file ?as_path ~allow real_path =
  let rel_path = Option.value as_path ~default:real_path in
  let ic = open_in_bin real_path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      match parse_channel ~path:rel_path ic with
      | str ->
          let env = Lint_ast.collect_env str in
          let sups = Lint_ast.suppressions str in
          Rules.all { Rules.rel_path; str; env }
          |> List.filter (fun d -> not (Lint_ast.suppressed sups d))
          |> List.filter (fun d -> not (Allowlist.allows allow d))
      | exception Syntaxerr.Error err ->
          [ parse_error_diag rel_path (Syntaxerr.location_of_error err) ]
      | exception Lexer.Error (_, loc) -> [ parse_error_diag rel_path loc ])

(* Directories never linted: build artifacts and test fixtures (fixtures
   deliberately contain violations). *)
let skip_dir name =
  name = "_build" || name = "fixtures"
  || (String.length name > 0 && name.[0] = '.')

let rec scan_dir acc path =
  Sys.readdir path |> Array.to_list |> List.sort String.compare
  |> List.fold_left
       (fun acc name ->
         let child = Filename.concat path name in
         if Sys.is_directory child then
           if skip_dir name then acc else scan_dir acc child
         else if Filename.check_suffix name ".ml" then child :: acc
         else acc)
       acc

let default_dirs = [ "lib"; "bin"; "bench"; "test"; "tool" ]

let lint_tree ~root ~allow =
  let files =
    List.concat_map
      (fun dir ->
        let abs = Filename.concat root dir in
        if Sys.file_exists abs && Sys.is_directory abs then scan_dir [] abs
        else [])
      default_dirs
    |> List.sort String.compare
  in
  let rel abs =
    let prefix = root ^ "/" in
    let p =
      if String.starts_with ~prefix abs then
        String.sub abs (String.length prefix) (String.length abs - String.length prefix)
      else abs
    in
    String.map (fun c -> if c = '\\' then '/' else c) p
  in
  List.concat_map (fun f -> lint_file ~as_path:(rel f) ~allow f) files
