(* Scan, parse, run rules, filter by suppressions and allowlist.

   Parsing happens once per file; the per-file rules run on each unit and
   the interprocedural O1 pass runs on all parsed units together.  Each
   diagnostic is filtered by the [@lint.allow] suppressions of the file it
   points into, then by the lint.toml allowlist. *)

let parse_channel ~path ic =
  let lexbuf = Lexing.from_channel ic in
  Location.init lexbuf path;
  Parse.implementation lexbuf

let parse_error_diag path loc =
  { Diag.rule = "parse-error"; loc; message = path ^ ": does not parse" }

let parse_file ~rel_path real_path =
  let ic = open_in_bin real_path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      match parse_channel ~path:rel_path ic with
      | str ->
          Ok { Rules.rel_path; str; env = Lint_ast.collect_env str }
      | exception Syntaxerr.Error err ->
          Error (parse_error_diag rel_path (Syntaxerr.location_of_error err))
      | exception Lexer.Error (_, loc) -> Error (parse_error_diag rel_path loc))

(* Run every rule over the parsed units and keep the diagnostics that
   survive both suppression layers.  As a side effect, allowlist entries
   that fire are marked used (see {!unused_diags}). *)
let lint_inputs ~allow (inputs : Rules.input list) =
  let sups_of = Hashtbl.create 16 in
  List.iter
    (fun (i : Rules.input) ->
      Hashtbl.replace sups_of i.Rules.rel_path (Lint_ast.suppressions i.Rules.str))
    inputs;
  let tagged =
    List.concat_map
      (fun (i : Rules.input) ->
        List.map (fun d -> (i.Rules.rel_path, d)) (Rules.all i))
      inputs
    @ Rules.global inputs
  in
  List.filter_map
    (fun (rel_path, d) ->
      let sups = Option.value ~default:[] (Hashtbl.find_opt sups_of rel_path) in
      if Lint_ast.suppressed sups d || Allowlist.allows allow d then None
      else Some d)
    tagged

(* [as_path] lets the self-tests lint a fixture as if it lived somewhere in
   the repo (rule scoping is path-based); it is also how scanned files are
   reported repo-relative. *)
let lint_file ?as_path ~allow real_path =
  let rel_path = Option.value as_path ~default:real_path in
  match parse_file ~rel_path real_path with
  | Ok input -> lint_inputs ~allow [ input ]
  | Error d -> [ d ]

(* Directories never linted: build artifacts and test fixtures (fixtures
   deliberately contain violations). *)
let skip_dir name =
  name = "_build" || name = "fixtures"
  || (String.length name > 0 && name.[0] = '.')

let rec scan_dir acc path =
  Sys.readdir path |> Array.to_list |> List.sort String.compare
  |> List.fold_left
       (fun acc name ->
         let child = Filename.concat path name in
         if Sys.is_directory child then
           if skip_dir name then acc else scan_dir acc child
         else if Filename.check_suffix name ".ml" then child :: acc
         else acc)
       acc

let default_dirs = [ "lib"; "bin"; "bench"; "test"; "tool" ]

(* A1: allowlist hygiene.  Entries that suppressed nothing in a whole-tree
   run are stale and must be pruned (or their path/line fixed).  Only
   meaningful after linting the full tree — a single-file run leaves most
   entries legitimately untouched. *)
let unused_diags (allow : Allowlist.t) =
  List.map
    (fun (e : Allowlist.entry) ->
      let pos =
        {
          Lexing.pos_fname = "tool/lint/lint.toml";
          pos_lnum = e.Allowlist.decl_line;
          pos_bol = 0;
          pos_cnum = 0;
        }
      in
      let loc = { Location.loc_start = pos; loc_end = pos; loc_ghost = false } in
      let what =
        match e.Allowlist.section with
        | Allowlist.Allow -> Printf.sprintf "%s = %S" e.Allowlist.key e.Allowlist.path
        | Allowlist.Protected_by ->
            Printf.sprintf "[protected_by] %s = %S" e.Allowlist.key e.Allowlist.path
      in
      {
        Diag.rule = "A1";
        loc;
        message =
          Printf.sprintf
            "unused allowlist entry %s%s — it suppressed nothing; prune it"
            what
            (match e.Allowlist.line with
            | Some l -> Printf.sprintf " (line %d)" l
            | None -> "");
      })
    (Allowlist.unused allow)

let lint_tree ~root ~allow =
  let files =
    List.concat_map
      (fun dir ->
        let abs = Filename.concat root dir in
        if Sys.file_exists abs && Sys.is_directory abs then scan_dir [] abs
        else [])
      default_dirs
    |> List.sort String.compare
  in
  let rel abs =
    let prefix = root ^ "/" in
    let p =
      if String.starts_with ~prefix abs then
        String.sub abs (String.length prefix) (String.length abs - String.length prefix)
      else abs
    in
    String.map (fun c -> if c = '\\' then '/' else c) p
  in
  let inputs, errors =
    List.fold_left
      (fun (inputs, errors) f ->
        match parse_file ~rel_path:(rel f) f with
        | Ok i -> (i :: inputs, errors)
        | Error d -> (inputs, d :: errors))
      ([], []) files
  in
  let kept = lint_inputs ~allow (List.rev inputs) in
  List.rev errors @ kept @ unused_diags allow
