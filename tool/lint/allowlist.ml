(* lint.toml: the checked-in allowlist.  Deliberately a tiny subset of
   TOML — comments, [section] headers, and

     KEY = ["path", "path:LINE", ...]

   entries, possibly spread over several lines.  Entries without a line
   number allowlist the whole file.

   Two sections carry meaning:

   - [allow] (also the default, for headerless snippets): KEY is a rule
     id; the entry suppresses that rule's diagnostics at the path.
   - [protected_by]: KEY is a lock name (Db_mutex, Pool_latch, ...); the
     entry answers rule S1's shared-state inventory for the path — "this
     state is protected by that lock".  It suppresses S1 only, and the
     key is documentation: the reviewed ownership map lives in the file.

   Every entry records whether it suppressed anything; the driver turns
   entries that never fired into diagnostics of their own (rule A1), so
   the allowlist cannot accumulate stale exceptions. *)

type section = Allow | Protected_by

type entry = {
  key : string;  (* rule id in [allow]; protecting lock in [protected_by] *)
  section : section;
  path : string;
  line : int option;
  decl_line : int;  (* line in lint.toml, for unused-entry diagnostics *)
  mutable used : bool;
}

type t = entry list

let empty : t = []

let parse_item ~section ~decl_line key item =
  let mk path line = { key; section; path; line; decl_line; used = false } in
  match String.rindex_opt item ':' with
  | Some i -> (
      let tail = String.sub item (i + 1) (String.length item - i - 1) in
      match int_of_string_opt tail with
      | Some line -> mk (String.sub item 0 i) (Some line)
      | None -> mk item None)
  | None -> mk item None

(* Pull every "quoted string" out of a line. *)
let quoted_items line =
  let acc = ref [] in
  let buf = Buffer.create 32 in
  let in_str = ref false in
  String.iter
    (fun c ->
      match (c, !in_str) with
      | '"', false -> in_str := true
      | '"', true ->
          acc := Buffer.contents buf :: !acc;
          Buffer.clear buf;
          in_str := false
      | _, true -> Buffer.add_char buf c
      | _, false -> ())
    line;
  List.rev !acc

let strip_comment line =
  match String.index_opt line '#' with
  | Some i when not (String.contains_from line 0 '"') || i < String.index line '"'
    ->
      String.sub line 0 i
  | _ -> line

let parse_string contents =
  let entries = ref [] in
  let current_key = ref None in
  let section = ref Allow in
  let lineno = ref 0 in
  String.split_on_char '\n' contents
  |> List.iter (fun raw ->
         incr lineno;
         let line = String.trim (strip_comment raw) in
         if line = "" then ()
         else if line.[0] = '[' then begin
           current_key := None;
           section :=
             if String.trim (String.map (function '[' | ']' -> ' ' | c -> c) line)
                = "protected_by"
             then Protected_by
             else Allow
         end
         else begin
           (match String.index_opt line '=' with
           | Some i ->
               let key = String.trim (String.sub line 0 i) in
               if key <> "" then current_key := Some key
           | None -> ());
           match !current_key with
           | Some key ->
               List.iter
                 (fun item ->
                   entries :=
                     parse_item ~section:!section ~decl_line:!lineno key item
                     :: !entries)
                 (quoted_items line);
               if String.contains line ']' then current_key := None
           | None -> ()
         end);
  List.rev !entries

let load path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> parse_string (really_input_string ic (in_channel_length ic)))
  end
  else empty

(* An [allow] entry suppresses its own rule; a [protected_by] entry is an
   S1 answer.  Every entry that fires is marked used (all matches, not
   just the first, so duplicate entries are reported stale together only
   when truly dead). *)
let allows (t : t) (d : Diag.t) =
  let file = Diag.file d and dline = Diag.line d in
  let hit e =
    (match e.section with
    | Allow -> e.key = d.Diag.rule
    | Protected_by -> d.Diag.rule = "S1")
    && e.path = file
    && match e.line with None -> true | Some l -> l = dline
  in
  let hits = List.filter hit t in
  List.iter (fun e -> e.used <- true) hits;
  hits <> []

let unused (t : t) = List.filter (fun e -> not e.used) t
