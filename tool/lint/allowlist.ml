(* lint.toml: the checked-in allowlist.  Deliberately a tiny subset of
   TOML — comments, [section] headers (ignored), and

     RULE = ["path", "path:LINE", ...]

   entries, possibly spread over several lines.  Entries without a line
   number allowlist the whole file for that rule. *)

type entry = { rule : string; path : string; line : int option }
type t = entry list

let empty : t = []

let parse_item rule item =
  match String.rindex_opt item ':' with
  | Some i -> (
      let tail = String.sub item (i + 1) (String.length item - i - 1) in
      match int_of_string_opt tail with
      | Some line -> { rule; path = String.sub item 0 i; line = Some line }
      | None -> { rule; path = item; line = None })
  | None -> { rule; path = item; line = None }

(* Pull every "quoted string" out of a line. *)
let quoted_items line =
  let acc = ref [] in
  let buf = Buffer.create 32 in
  let in_str = ref false in
  String.iter
    (fun c ->
      match (c, !in_str) with
      | '"', false -> in_str := true
      | '"', true ->
          acc := Buffer.contents buf :: !acc;
          Buffer.clear buf;
          in_str := false
      | _, true -> Buffer.add_char buf c
      | _, false -> ())
    line;
  List.rev !acc

let strip_comment line =
  match String.index_opt line '#' with
  | Some i when not (String.contains_from line 0 '"') || i < String.index line '"'
    ->
      String.sub line 0 i
  | _ -> line

let parse_string contents =
  let entries = ref [] in
  let current_rule = ref None in
  String.split_on_char '\n' contents
  |> List.iter (fun raw ->
         let line = String.trim (strip_comment raw) in
         if line = "" || (String.length line > 0 && line.[0] = '[') then ()
         else begin
           (match String.index_opt line '=' with
           | Some i ->
               let key = String.trim (String.sub line 0 i) in
               if key <> "" then current_rule := Some key
           | None -> ());
           match !current_rule with
           | Some rule ->
               List.iter
                 (fun item -> entries := parse_item rule item :: !entries)
                 (quoted_items line);
               if String.contains line ']' then current_rule := None
           | None -> ()
         end);
  List.rev !entries

let load path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> parse_string (really_input_string ic (in_channel_length ic)))
  end
  else empty

let allows (t : t) (d : Diag.t) =
  List.exists
    (fun e ->
      e.rule = d.Diag.rule
      && e.path = Diag.file d
      && match e.line with None -> true | Some l -> l = Diag.line d)
    t
