(* Shared AST plumbing: longident flattening, alias/open tracking,
   [@lint.allow] suppression spans, and small traversal helpers.  Written
   against the 5.1 Parsetree (see the ocaml-compiler pin in CI). *)

open Parsetree

let flatten lid = try Longident.flatten lid with Misc.Fatal_error -> []

(* ------------------------------------------------------------------ *)
(* Per-file name environment: module aliases and opens.                 *)

type env = {
  mutable aliases : (string * string list) list;
      (* [module Disk = Fieldrep_storage.Disk] -> ("Disk", [storage; Disk]) *)
  mutable opens : string list list;  (* [open Fieldrep_storage] -> [[...]] *)
}

let collect_env str =
  let env = { aliases = []; opens = [] } in
  let it =
    {
      Ast_iterator.default_iterator with
      module_binding =
        (fun it mb ->
          (match (mb.pmb_name.Location.txt, mb.pmb_expr.pmod_desc) with
          | Some name, Pmod_ident lid ->
              env.aliases <- (name, flatten lid.Location.txt) :: env.aliases
          | _ -> ());
          Ast_iterator.default_iterator.module_binding it mb);
      open_declaration =
        (fun it od ->
          (match od.popen_expr.pmod_desc with
          | Pmod_ident lid -> env.opens <- flatten lid.Location.txt :: env.opens
          | _ -> ());
          Ast_iterator.default_iterator.open_declaration it od);
    }
  in
  it.structure it str;
  env

(* Expand a use site through one level of local aliasing: [Disk.read]
   becomes [Fieldrep_storage.Disk.read] when the file aliased [Disk]. *)
let resolve env lid =
  match flatten lid with
  | [] -> []
  | head :: rest -> (
      match List.assoc_opt head env.aliases with
      | Some full -> full @ rest
      | None -> head :: rest)

let strip_stdlib = function "Stdlib" :: rest -> rest | path -> path

(* Last path component of the function being applied, if syntactically
   evident: [Buffer_pool.pin] and [pin] both yield ["pin"]. *)
let apply_head fn =
  match fn.pexp_desc with
  | Pexp_ident lid -> (
      match List.rev (flatten lid.Location.txt) with
      | last :: _ -> Some last
      | [] -> None)
  | _ -> None

(* Visit every immediate sub-expression of [e] (descending through
   patterns, cases and bindings, but not recursing into sub-expressions
   themselves — the callback decides how to continue). *)
let iter_child_exprs f e =
  let it =
    { Ast_iterator.default_iterator with expr = (fun _ child -> f child) }
  in
  Ast_iterator.default_iterator.expr it e

(* ------------------------------------------------------------------ *)
(* Use sites: every longident reference with a location, for L1.       *)

let longident_sites str =
  let acc = ref [] in
  let add (lid : Longident.t Location.loc) =
    acc := (lid.Location.txt, lid.Location.loc) :: !acc
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident lid
          | Pexp_construct (lid, _)
          | Pexp_field (_, lid)
          | Pexp_setfield (_, lid, _)
          | Pexp_new lid ->
              add lid
          | Pexp_record (fields, _) -> List.iter (fun (lid, _) -> add lid) fields
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_construct (lid, _) | Ppat_type lid -> add lid
          | Ppat_record (fields, _) -> List.iter (fun (lid, _) -> add lid) fields
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
      typ =
        (fun it t ->
          (match t.ptyp_desc with
          | Ptyp_constr (lid, _) | Ptyp_class (lid, _) -> add lid
          | _ -> ());
          Ast_iterator.default_iterator.typ it t);
      module_expr =
        (fun it me ->
          (match me.pmod_desc with
          | Pmod_ident lid -> add lid
          | _ -> ());
          Ast_iterator.default_iterator.module_expr it me);
    }
  in
  it.structure it str;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Suppression: [@lint.allow "P1"] / [@@@lint.allow "P1 D1"].          *)

type suppression = {
  rules : string list;  (* empty means all rules *)
  span : int * int;  (* start/end cnum; (0, max_int) for floating *)
}

let allow_payload (attr : attribute) =
  if attr.attr_name.Location.txt <> "lint.allow" then None
  else
    match attr.attr_payload with
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval
                ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
            _;
          };
        ] ->
        Some
          (String.split_on_char ' ' s
          |> List.concat_map (String.split_on_char ',')
          |> List.filter (fun id -> id <> ""))
    | _ -> Some []

let suppressions str =
  let acc = ref [] in
  let add_span loc attrs =
    List.iter
      (fun attr ->
        match allow_payload attr with
        | Some rules ->
            acc :=
              {
                rules;
                span =
                  ( loc.Location.loc_start.Lexing.pos_cnum,
                    loc.Location.loc_end.Lexing.pos_cnum );
              }
              :: !acc
        | None -> ())
      attrs
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          add_span e.pexp_loc e.pexp_attributes;
          Ast_iterator.default_iterator.expr it e);
      value_binding =
        (fun it vb ->
          add_span vb.pvb_loc vb.pvb_attributes;
          Ast_iterator.default_iterator.value_binding it vb);
      module_binding =
        (fun it mb ->
          add_span mb.pmb_loc mb.pmb_attributes;
          Ast_iterator.default_iterator.module_binding it mb);
      type_declaration =
        (fun it td ->
          (* S1 fires on field declarations; an attribute on the type
             covers every field of the record. *)
          add_span td.ptype_loc td.ptype_attributes;
          Ast_iterator.default_iterator.type_declaration it td);
      structure_item =
        (fun it si ->
          (match si.pstr_desc with
          | Pstr_eval (_, attrs) -> add_span si.pstr_loc attrs
          | Pstr_attribute attr -> (
              (* Floating [@@@lint.allow ...]: whole file. *)
              match allow_payload attr with
              | Some rules -> acc := { rules; span = (0, max_int) } :: !acc
              | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.structure_item it si);
    }
  in
  it.structure it str;
  !acc

let suppressed sups (d : Diag.t) =
  let cnum = Diag.start_cnum d in
  List.exists
    (fun s ->
      let lo, hi = s.span in
      cnum >= lo && cnum <= hi
      && (s.rules = [] || List.mem d.Diag.rule s.rules))
    sups
