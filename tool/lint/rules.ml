(* The five fieldrep disciplines, as syntactic checks over one parsed
   compilation unit.  Each rule returns raw diagnostics; the driver applies
   [@lint.allow] suppressions and the lint.toml allowlist afterwards.

   All checks are intentionally syntactic (no typing pass): they resolve
   names through the repo's top-of-file alias idiom
   ([module Disk = Fieldrep_storage.Disk]) and through [open], which is how
   every cross-library reference in this codebase is written. *)

open Parsetree

type input = {
  rel_path : string;  (* repo-relative, '/'-separated *)
  str : structure;
  env : Lint_ast.env;
}

let diag rule loc fmt = Printf.ksprintf (fun message -> { Diag.rule; loc; message }) fmt

let under dir rel_path =
  let dir = if String.length dir > 0 && dir.[String.length dir - 1] = '/' then dir else dir ^ "/" in
  String.starts_with ~prefix:dir rel_path

let in_lib i = under "lib" i.rel_path
let in_lint_tool i = under "tool/lint" i.rel_path

(* ------------------------------------------------------------------ *)
(* L1: layering.  Guarded internals only from their owning directories; *)
(* no txn -> replication back-edge.  Scope: lib/.                       *)

let l1 i =
  if not (in_lib i) then []
  else begin
    let dirname = Filename.dirname i.rel_path in
    let sites = Lint_ast.longident_sites i.str in
    let acc = ref [] in
    let allowed dirs = List.exists (fun d -> under d (dirname ^ "/")) dirs in
    List.iter
      (fun (lid, loc) ->
        let resolved = Lint_ast.resolve i.env lid in
        List.iter
          (fun (g : Layers.guard) ->
            let hit =
              match resolved with
              | l :: m :: _ when l = g.library && m = g.name -> true
              | m :: _ ->
                  (* Bare [Disk.x] only reaches the internal module if the
                     file opened the wrapping library. *)
                  m = g.name && List.mem [ g.library ] i.env.Lint_ast.opens
              | [] -> false
            in
            if hit && not (allowed g.allowed_dirs) then
              acc :=
                diag "L1" loc "%s.%s used outside %s (%s)" g.library g.name
                  (String.concat ", " g.allowed_dirs)
                  g.why
                :: !acc)
          Layers.guards;
        List.iter
          (fun (dir, library, why) ->
            if under dir i.rel_path
               && (match resolved with l :: _ -> l = library | [] -> false)
            then acc := diag "L1" loc "%s must not reference %s (%s)" dir library why :: !acc)
          Layers.forbidden_edges)
      sites;
    List.rev !acc
  end

(* ------------------------------------------------------------------ *)
(* P1: pin discipline.  Every [pin]/[read_batch] call must be            *)
(* post-dominated by [unpin]/[update_batch] (or divergence) on every     *)
(* straight-line, match and if path — or sit inside a [Fun.protect]      *)
(* whose [~finally] releases.  The blessed way out is the [with_pin] /   *)
(* [with_page_read] / [with_page_write] combinators, which never leak.   *)

let acquire_names = [ "pin"; "read_batch" ]
let release_names = [ "unpin"; "update_batch" ]
let diverge_names = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg"; "exit" ]

let is_named names fn =
  match Lint_ast.apply_head fn with Some n -> List.mem n names | None -> false

let is_protect fn =
  match Lint_ast.apply_head fn with Some "protect" -> true | _ -> false

let finally_body args =
  List.find_map
    (fun (label, a) ->
      match (label, a.pexp_desc) with
      | Asttypes.Labelled "finally", Pexp_fun (_, _, _, body) -> Some body
      | _ -> None)
    args

(* Does evaluating [e] guarantee a release (or divergence) on every path? *)
let rec settles e =
  match e.pexp_desc with
  | Pexp_apply (fn, args) ->
      is_named release_names fn || is_named diverge_names fn
      || (is_protect fn
         && match finally_body args with Some b -> settles b | None -> false)
      || List.exists (fun (_, a) -> settles a) args
  | Pexp_sequence (a, b) -> settles a || settles b
  | Pexp_let (_, vbs, body) ->
      List.exists (fun vb -> settles vb.pvb_expr) vbs || settles body
  | Pexp_match (scrut, cases) ->
      settles scrut
      || (cases <> [] && List.for_all (fun c -> settles c.pc_rhs) cases)
  | Pexp_try (body, cases) ->
      settles body && cases <> [] && List.for_all (fun c -> settles c.pc_rhs) cases
  | Pexp_ifthenelse (cond, t, Some e2) -> settles cond || (settles t && settles e2)
  | Pexp_ifthenelse (cond, _, None) -> settles cond
  | Pexp_constraint (e, _) | Pexp_open (_, e) | Pexp_letmodule (_, _, e) | Pexp_newtype (_, e) ->
      settles e
  | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ } ->
      true
  | Pexp_fun _ | Pexp_function _ -> false
  | _ -> false

(* What still runs after the current expression: either one expression, or
   a set of alternative branches all of which must settle. *)
type cont = C_one of expression | C_all of expression list

let cont_settles = function
  | C_one e -> settles e
  | C_all es -> es <> [] && List.for_all settles es

let p1 i =
  let acc = ref [] in
  let rec walk conts e =
    match e.pexp_desc with
    | Pexp_apply (fn, args) ->
        if is_named acquire_names fn && not (List.exists cont_settles conts)
        then
          acc :=
            diag "P1" e.pexp_loc
              "%s is not post-dominated by a release (unpin/update_batch); \
               use with_pin/with_page_read/with_page_write or Fun.protect"
              (match Lint_ast.apply_head fn with Some n -> n | None -> "acquire")
            :: !acc;
        (* A lambda passed to Fun.protect runs under its ~finally. *)
        let protect_finally =
          if is_protect fn then finally_body args else None
        in
        List.iter
          (fun (label, a) ->
            match (a.pexp_desc, protect_finally, label) with
            | Pexp_fun (_, _, _, body), Some fin, Asttypes.Nolabel ->
                walk [ C_one fin ] body
            | _ -> walk conts a)
          args
    | Pexp_sequence (a, b) ->
        walk (C_one b :: conts) a;
        walk conts b
    | Pexp_let (_, vbs, body) ->
        List.iter (fun vb -> walk (C_one body :: conts) vb.pvb_expr) vbs;
        walk conts body
    | Pexp_match (scrut, cases) ->
        walk (C_all (List.map (fun c -> c.pc_rhs) cases) :: conts) scrut;
        List.iter
          (fun c ->
            Option.iter (walk conts) c.pc_guard;
            walk conts c.pc_rhs)
          cases
    | Pexp_try (body, cases) ->
        walk conts body;
        List.iter (fun c -> walk conts c.pc_rhs) cases
    | Pexp_ifthenelse (cond, t, else_) ->
        let branches =
          match else_ with Some e2 -> [ t; e2 ] | None -> []
        in
        (if branches = [] then walk conts cond
         else walk (C_all branches :: conts) cond);
        walk conts t;
        Option.iter (walk conts) else_
    | Pexp_fun (_, _, _, body) ->
        (* A lambda body is its own scope: pins taken inside must be
           released inside (the caller is unknown). *)
        walk [] body
    | Pexp_function cases -> List.iter (fun c -> walk [] c.pc_rhs) cases
    | Pexp_constraint (e1, _)
    | Pexp_open (_, e1)
    | Pexp_letmodule (_, _, e1)
    | Pexp_newtype (_, e1) ->
        walk conts e1
    | _ -> Lint_ast.iter_child_exprs (walk conts) e
  in
  let it =
    {
      Ast_iterator.default_iterator with
      (* [walk] covers whole expression trees itself (including nested
         lets), so the generic expr hook is a no-op; bindings and
         top-level evals are the entry points. *)
      value_binding = (fun _ vb -> walk [] vb.pvb_expr);
      structure_item =
        (fun it si ->
          (match si.pstr_desc with
          | Pstr_eval (e, _) -> walk [] e
          | _ -> ());
          Ast_iterator.default_iterator.structure_item it si);
      expr = (fun _ _ -> ());
    }
  in
  it.structure it i.str;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* D1: durability.  A structure item that appends a commit / abort /     *)
(* checkpoint / repair record must also sync the log.  Scope: lib/.      *)

let d1_constructors = [ "Txn_commit"; "Txn_abort"; "Scrub_repair"; "Checkpoint" ]

let expr_mentions_constructor e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_construct (lid, _) -> (
              match List.rev (Lint_ast.flatten lid.Location.txt) with
              | last :: _ when List.mem last d1_constructors -> found := true
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

let d1 i =
  if not (in_lib i) then []
  else begin
    let acc = ref [] in
    let check_item si =
      let triggers = ref [] in
      let has_sync = ref false in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              (match e.pexp_desc with
              | Pexp_apply (fn, args) -> (
                  match Lint_ast.apply_head fn with
                  | Some "sync" -> has_sync := true
                  | Some "append"
                    when List.exists (fun (_, a) -> expr_mentions_constructor a) args
                    ->
                      triggers := e.pexp_loc :: !triggers
                  | Some "append_abort" -> triggers := e.pexp_loc :: !triggers
                  | _ -> ())
              | _ -> ());
              Ast_iterator.default_iterator.expr it e);
        }
      in
      it.structure_item it si;
      if not !has_sync then
        List.iter
          (fun loc ->
            acc :=
              diag "D1" loc
                "durability-critical WAL append without Wal.sync in the same \
                 definition"
              :: !acc)
          !triggers
    in
    List.iter check_item i.str;
    List.rev !acc
  end

(* ------------------------------------------------------------------ *)
(* E1: exception hygiene.  No catch-alls that could swallow              *)
(* Corrupt_page / Read_error.  A catch-all that re-raises the bound      *)
(* exception is fine.  Scope: lib/ and tool/lint.                        *)

let rec reraises v e =
  match e.pexp_desc with
  | Pexp_apply (fn, args) ->
      (is_named [ "raise"; "raise_notrace" ] fn
      && List.exists
           (fun (_, a) ->
             match a.pexp_desc with
             | Pexp_ident { txt = Longident.Lident x; _ } -> x = v
             | _ -> false)
           args)
      || List.exists (fun (_, a) -> reraises v a) args
  | Pexp_sequence (a, b) -> reraises v a || reraises v b
  | Pexp_let (_, _, body) | Pexp_constraint (body, _) | Pexp_open (_, body) ->
      reraises v body
  | Pexp_ifthenelse (_, t, e2) ->
      reraises v t || (match e2 with Some x -> reraises v x | None -> false)
  | Pexp_match (_, cases) | Pexp_try (_, cases) ->
      List.exists (fun c -> reraises v c.pc_rhs) cases
  | _ -> false

let rec catchall_pat p =
  match p.ppat_desc with
  | Ppat_any -> Some None
  | Ppat_var v -> Some (Some v.Location.txt)
  | Ppat_alias (inner, v) -> (
      match catchall_pat inner with Some _ -> Some (Some v.Location.txt) | None -> None)
  | Ppat_or (a, b) -> (
      match catchall_pat a with Some r -> Some r | None -> catchall_pat b)
  | _ -> None

let e1 i =
  if not (in_lib i || in_lint_tool i) then []
  else begin
    let acc = ref [] in
    let flag_cases cases =
      List.iter
        (fun c ->
          let pat, rhs =
            match c.pc_lhs.ppat_desc with
            | Ppat_exception p -> (Some p, c.pc_rhs)
            | _ -> (None, c.pc_rhs)
          in
          match pat with
          | None -> ()
          | Some p -> (
              match catchall_pat p with
              | Some (Some v) when reraises v rhs -> ()
              | Some _ ->
                  acc :=
                    diag "E1" p.ppat_loc
                      "catch-all exception handler can swallow Corrupt_page / \
                       Read_error; match specific exceptions or re-raise"
                    :: !acc
              | None -> ()))
        cases
    in
    let flag_try_cases cases =
      List.iter
        (fun c ->
          match c.pc_lhs.ppat_desc with
          | Ppat_exception _ -> ()  (* handled via flag_cases on match *)
          | _ -> (
              match catchall_pat c.pc_lhs with
              | Some (Some v) when reraises v c.pc_rhs -> ()
              | Some _ ->
                  acc :=
                    diag "E1" c.pc_lhs.ppat_loc
                      "catch-all exception handler can swallow Corrupt_page / \
                       Read_error; match specific exceptions or re-raise"
                    :: !acc
              | None -> ()))
        cases
    in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun it e ->
            (match e.pexp_desc with
            | Pexp_try (_, cases) -> flag_try_cases cases
            | Pexp_match (_, cases) -> flag_cases cases
            | _ -> ());
            Ast_iterator.default_iterator.expr it e);
      }
    in
    it.structure it i.str;
    List.rev !acc
  end

(* ------------------------------------------------------------------ *)
(* F1: partiality.  Total alternatives exist for each of these; see      *)
(* lib/util/listx.ml.  Scope: lib/ and tool/lint.                        *)

let f1_banned =
  [
    ([ "List"; "hd" ], "use pattern matching or Listx.last_exn");
    ([ "List"; "nth" ], "use List.nth_opt or Listx.nth_exn");
    ([ "Option"; "get" ], "match and raise a named error instead");
    ([ "Array"; "unsafe_get" ], "use Array.get; bounds checks are not the bottleneck");
    ([ "Hashtbl"; "find" ], "use Hashtbl.find_opt and handle None");
    ([ "Obj"; "magic" ], "no unchecked casts in lib/");
  ]

let f1 i =
  if not (in_lib i || in_lint_tool i) then []
  else begin
    let acc = ref [] in
    let check_ident lid loc =
      let resolved = Lint_ast.strip_stdlib (Lint_ast.resolve i.env lid) in
      List.iter
        (fun (banned, hint) ->
          if resolved = banned then
            acc :=
              diag "F1" loc "%s is partial; %s" (String.concat "." banned) hint
              :: !acc)
        f1_banned
    in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun it e ->
            (match e.pexp_desc with
            | Pexp_ident lid -> check_ident lid.Location.txt lid.Location.loc
            | _ -> ());
            Ast_iterator.default_iterator.expr it e);
        structure_item =
          (fun it si ->
            (match si.pstr_desc with
            | Pstr_primitive vd
              when List.exists
                     (fun p -> p = "%identity")
                     vd.pval_prim ->
                acc :=
                  diag "F1" si.pstr_loc
                    "external ... = \"%%identity\" is an unchecked cast"
                  :: !acc
            | _ -> ());
            Ast_iterator.default_iterator.structure_item it si);
      }
    in
    it.structure it i.str;
    List.rev !acc
  end

(* ------------------------------------------------------------------ *)
(* S1: shared-mutable-state inventory.  Every [mutable] record field,     *)
(* module-level [ref]/[Hashtbl.create] binding and Hashtbl-typed field    *)
(* in lib/ is a potential cross-domain data race once the engine runs     *)
(* under Domain.spawn.  Each one must either be wrapped in Atomic/Mutex   *)
(* or carry a lint.toml [protected_by] entry naming its protecting lock,  *)
(* so the ownership map stays complete and reviewed.  Scope: lib/.        *)

(* Type constructors that make a slot safe by construction. *)
let s1_safe_constrs = [ "Atomic"; "Mutex"; "Condition"; "Semaphore" ]

let rec s1_safe_typ t =
  match t.ptyp_desc with
  | Ptyp_constr (lid, args) -> (
      match Lint_ast.flatten lid.Location.txt with
      | [ m ] when List.mem m s1_safe_constrs -> true
      | m :: _ :: _ when List.mem m s1_safe_constrs -> true
      | path -> (
          (match List.rev path with
          | "t" :: m :: _ when List.mem m s1_safe_constrs -> true
          | "key" :: "DLS" :: _ -> true  (* Domain.DLS is per-domain *)
          | _ -> false)
          || List.exists s1_safe_typ args))
  | _ -> false

let s1_hashtbl_typ t =
  match t.ptyp_desc with
  | Ptyp_constr (lid, _) -> (
      match List.rev (Lint_ast.flatten lid.Location.txt) with
      | "t" :: "Hashtbl" :: _ -> true
      | _ -> false)
  | _ -> false

let s1_msg = "name its protecting lock in lint.toml [protected_by] or wrap it in Atomic/Mutex"

let s1 i =
  if not (in_lib i) then []
  else begin
    let acc = ref [] in
    (* Mutable and Hashtbl-typed record fields, anywhere in the unit. *)
    let it =
      {
        Ast_iterator.default_iterator with
        type_declaration =
          (fun it td ->
            (match td.ptype_kind with
            | Ptype_record labels ->
                List.iter
                  (fun ld ->
                    if s1_safe_typ ld.pld_type then ()
                    else if ld.pld_mutable = Asttypes.Mutable then
                      acc :=
                        diag "S1" ld.pld_loc
                          "mutable field '%s' is shared mutable state; %s"
                          ld.pld_name.Location.txt s1_msg
                        :: !acc
                    else if s1_hashtbl_typ ld.pld_type then
                      acc :=
                        diag "S1" ld.pld_loc
                          "Hashtbl field '%s' is shared mutable state; %s"
                          ld.pld_name.Location.txt s1_msg
                        :: !acc)
                  labels
            | _ -> ());
            Ast_iterator.default_iterator.type_declaration it td);
      }
    in
    it.structure it i.str;
    (* Module-level refs and tables (locals are domain-private).  Only the
       top level of the unit and of plain sub-modules counts. *)
    let rec binding_head e =
      match e.pexp_desc with
      | Pexp_constraint (e1, _) -> binding_head e1
      | _ -> e
    in
    let flag_binding vb =
      let e = binding_head vb.pvb_expr in
      match e.pexp_desc with
      | Pexp_apply (fn, _) -> (
          match Lint_ast.apply_head fn with
          | Some "ref" ->
              acc :=
                diag "S1" vb.pvb_loc
                  "module-level ref is shared mutable state; %s" s1_msg
                :: !acc
          | Some "create" -> (
              match fn.pexp_desc with
              | Pexp_ident lid
                when (match List.rev (Lint_ast.resolve i.env lid.Location.txt) with
                     | _ :: "Hashtbl" :: _ -> true
                     | _ -> false) ->
                  acc :=
                    diag "S1" vb.pvb_loc
                      "module-level Hashtbl is shared mutable state; %s" s1_msg
                    :: !acc
              | _ -> ())
          | _ -> ())
      | _ -> ()
    in
    let rec items str =
      List.iter
        (fun si ->
          match si.pstr_desc with
          | Pstr_value (_, vbs) -> List.iter flag_binding vbs
          | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
              items s
          | _ -> ())
        str
    in
    items i.str;
    List.rev !acc
  end

(* ------------------------------------------------------------------ *)
(* C1: no bare Stats counter increments.  [s.field <- s.field + n] is a   *)
(* lost-update race the moment two domains touch the same block; every    *)
(* counter bump goes through the blessed Stats.bump/Stats.add so the      *)
(* representation can become Atomic in one place.  The single permitted   *)
(* mutation site is Stats.add itself (lib/storage/stats.ml).  Scope:      *)
(* lib/, bin/ and bench/.                                                 *)

let c1_stats_fields =
  [
    "page_reads"; "page_writes"; "buffer_hits"; "pages_allocated";
    "objects_read"; "objects_written"; "wal_appends"; "wal_bytes";
    "recovery_replays"; "txn_commits"; "txn_aborts"; "lock_waits";
    "deadlocks"; "undo_applied"; "checksum_failures"; "scrub_pages";
    "repairs"; "degraded_reads"; "read_retries"; "failed_reads";
    "prefetch_issued"; "prefetch_hits"; "wal_flushes"; "frames_shipped";
    "frames_applied"; "acks_waited"; "replica_lag_bytes"; "maint_steps";
    "maint_pages_walked"; "maint_lock_yields"; "maint_backfill_pending";
    "peer_deaths"; "ack_demotions"; "heartbeats_missed"; "failovers";
    "reconnects";
  ]

let c1 i =
  if i.rel_path = "lib/storage/stats.ml" then []
  else if not (in_lib i || under "bin" i.rel_path || under "bench" i.rel_path)
  then []
  else begin
    let acc = ref [] in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun it e ->
            (match e.pexp_desc with
            | Pexp_setfield (_, lid, _) -> (
                match List.rev (Lint_ast.flatten lid.Location.txt) with
                | field :: _ when List.mem field c1_stats_fields ->
                    acc :=
                      diag "C1" e.pexp_loc
                        "direct mutation of Stats field '%s'; use Stats.bump \
                         / Stats.add (the single blessed mutation point)"
                        field
                      :: !acc
                | _ -> ())
            | _ -> ());
            Ast_iterator.default_iterator.expr it e);
      }
    in
    it.structure it i.str;
    List.rev !acc
  end

(* ------------------------------------------------------------------ *)

let all i = List.concat [ l1 i; p1 i; d1 i; e1 i; f1 i; s1 i; c1 i ]

(* O1 is interprocedural: it sees every parsed unit at once and returns
   diagnostics tagged with the file they belong to, so the driver can
   apply that file's suppressions. *)
let global (inputs : input list) : (string * Diag.t) list =
  inputs
  |> List.filter (fun i -> in_lib i)
  |> List.map (fun i -> (i.rel_path, i.str, i.env))
  |> Lockorder.check
