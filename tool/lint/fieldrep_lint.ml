(* fieldrep_lint: enforce the storage/durability/layering disciplines.

   Usage:
     fieldrep_lint [--root DIR] [--allowlist FILE]
     fieldrep_lint [--allowlist FILE] [--as-path REL] FILE.ml ...

   With --root (default "."), lints lib/ bin/ bench/ test/ tool/ under the
   given repo root against tool/lint/lint.toml.  With explicit files, lints
   just those (each under the virtual path given by --as-path, if any —
   used by the self-tests).  Exits 1 if any diagnostic survives the
   [@lint.allow] attributes and the allowlist. *)

module Core = Fieldrep_lint_core

let usage = "fieldrep_lint [--root DIR] [--allowlist FILE] [--as-path REL] [files...]"

let () =
  let root = ref "." in
  let allowlist_path = ref None in
  let as_path = ref None in
  let files = ref [] in
  Arg.parse
    [
      ("--root", Arg.Set_string root, "DIR repo root to lint (default .)");
      ( "--allowlist",
        Arg.String (fun s -> allowlist_path := Some s),
        "FILE allowlist (default ROOT/tool/lint/lint.toml)" );
      ( "--as-path",
        Arg.String (fun s -> as_path := Some s),
        "REL lint the given files under this repo-relative path" );
    ]
    (fun f -> files := f :: !files)
    usage;
  let allow =
    match !allowlist_path with
    | Some p -> Core.Allowlist.load p
    | None ->
        Core.Allowlist.load (Filename.concat !root "tool/lint/lint.toml")
  in
  let diags =
    match List.rev !files with
    | [] -> Core.Driver.lint_tree ~root:!root ~allow
    | files ->
        List.concat_map
          (fun f -> Core.Driver.lint_file ?as_path:!as_path ~allow f)
          files
  in
  let diags = List.sort Core.Diag.compare diags in
  List.iter (fun d -> print_endline (Core.Diag.to_string d)) diags;
  if diags <> [] then begin
    Printf.eprintf "fieldrep_lint: %d violation(s)\n" (List.length diags);
    exit 1
  end
