(* A single finding.  [file]/[line] come from the parser's locations, so a
   fixture linted under a virtual path reports that path. *)

type t = {
  rule : string;  (* "L1" .. "F1", "S1"/"O1"/"C1"/"A1", or "parse-error" *)
  loc : Location.t;
  message : string;
}

let file t = t.loc.Location.loc_start.Lexing.pos_fname
let line t = t.loc.Location.loc_start.Lexing.pos_lnum
let start_cnum t = t.loc.Location.loc_start.Lexing.pos_cnum

let compare a b =
  match String.compare (file a) (file b) with
  | 0 -> Int.compare (start_cnum a) (start_cnum b)
  | c -> c

let to_string t =
  let col =
    t.loc.Location.loc_start.Lexing.pos_cnum
    - t.loc.Location.loc_start.Lexing.pos_bol
  in
  Printf.sprintf "%s:%d:%d: [%s] %s" (file t) (line t) col t.rule t.message
