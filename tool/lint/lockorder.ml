(* Rule O1: static lock-order checking.

   The engine documents one canonical acquisition order (DESIGN.md,
   "Domain-safety"):

     Maint_job -> Txn_lock -> Pool_pin -> Wal_sync

   mirrored at runtime by [Fieldrep_util.Lockdep].  This module rebuilds
   the order statically: it scans every parsed compilation unit for
   acquisition sites — the [Lockdep] primitives themselves plus the
   caller-facing heads of the instrumented subsystems (lock-manager
   acquire/grant, buffer-pool pin and its bracket combinators, Wal.sync) —
   propagates a syntactic held-context through each definition, closes a
   may-acquire summary over the interprocedural call graph, and reports
   every edge that runs against the canonical ranks.

   The analysis is deliberately an under-approximation: locks held across
   separate top-level definitions (a caller pinning in one function and
   syncing in another) are invisible to it, as are acquisitions behind
   closures stored in records.  The runtime lockdep recorder covers that
   remainder; O1 exists to catch the direct and one-call-deep inversions
   at review time, before any schedule runs. *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* Lock classes and the canonical partial order (total, as ranks).      *)

type cls = Maint_job | Txn_lock | Pool_pin | Wal_sync

let cls_name = function
  | Maint_job -> "Maint_job"
  | Txn_lock -> "Txn_lock"
  | Pool_pin -> "Pool_pin"
  | Wal_sync -> "Wal_sync"

let rank = function Maint_job -> 0 | Txn_lock -> 1 | Pool_pin -> 2 | Wal_sync -> 3

let canonical = "Maint_job -> Txn_lock -> Pool_pin -> Wal_sync"

let of_constructor = function
  | "Maint_job" -> Some Maint_job
  | "Txn_lock" -> Some Txn_lock
  | "Pool_pin" -> Some Pool_pin
  | "Wal_sync" -> Some Wal_sync
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Caller-facing acquisition heads, by resolved-name suffix.  The        *)
(* [Lockdep] primitives are handled separately (their class comes from   *)
(* the constructor argument); these tables cover the instrumented        *)
(* subsystems' own entry points, so a caller of [Buffer_pool.pin] gets   *)
(* the same held-context the runtime recorder would give it.             *)

(* Held for the rest of the enclosing sequence, until a release head. *)
let bare_heads = [ ("pin", Pool_pin); ("read_batch", Pool_pin); ("acquire", Txn_lock); ("grant", Txn_lock) ]
let release_heads = [ ("unpin", Pool_pin); ("update_batch", Pool_pin); ("release_all", Txn_lock) ]

(* Held for the lambda argument only (never leaks). *)
let bracket_heads =
  [ ("with_pin", Pool_pin); ("with_page_read", Pool_pin); ("with_page_write", Pool_pin) ]

(* ------------------------------------------------------------------ *)
(* Per-definition facts gathered by the walk.                           *)

type acq = {
  cls : cls;
  loc : Location.t;
  isolated : bool;
  held_at_acq : cls list;
}

type call = {
  callee : string * string;  (* (Module, name), alias-resolved *)
  call_loc : Location.t;
  held_at_call : cls list;
  call_isolated : bool;
}

type def = {
  key : string * string;
  label : string;  (* "Module.name", for witness chains *)
  rel_path : string;
  mutable acqs : acq list;
  mutable calls : call list;
}

let diag loc fmt =
  Printf.ksprintf (fun message -> { Diag.rule = "O1"; loc; message }) fmt

let module_of_path rel_path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename rel_path))

(* Normalize [f @@ x] and [x |> f] into a plain application of [f]. *)
let rec normalize_apply fn args =
  match fn.pexp_desc with
  | Pexp_ident { txt = Longident.Lident "@@"; _ } -> (
      match args with
      | [ (_, f); (_, x) ] -> (
          match f.pexp_desc with
          | Pexp_apply (f', args') -> normalize_apply f' (args' @ [ (Asttypes.Nolabel, x) ])
          | _ -> (f, [ (Asttypes.Nolabel, x) ]))
      | _ -> (fn, args))
  | Pexp_ident { txt = Longident.Lident "|>"; _ } -> (
      match args with
      | [ (_, x); (_, f) ] -> (
          match f.pexp_desc with
          | Pexp_apply (f', args') -> normalize_apply f' (args' @ [ (Asttypes.Nolabel, x) ])
          | _ -> (f, [ (Asttypes.Nolabel, x) ]))
      | _ -> (fn, args))
  | _ -> (fn, args)

(* The lock-class constructor argument of a Lockdep primitive. *)
let cls_arg args =
  List.find_map
    (fun (_, a) ->
      match a.pexp_desc with
      | Pexp_construct (lid, None) -> (
          match List.rev (Lint_ast.flatten lid.Location.txt) with
          | last :: _ -> of_constructor last
          | [] -> None)
      | _ -> None)
    args

let is_lockdep env fn =
  match fn.pexp_desc with
  | Pexp_ident lid -> (
      match List.rev (Lint_ast.resolve env lid.Location.txt) with
      | _ :: qual :: _ -> qual = "Lockdep"
      | _ -> false)
  | _ -> false

let head_in table env fn =
  match fn.pexp_desc with
  | Pexp_ident lid when not (is_lockdep env fn) -> (
      match List.rev (Lint_ast.resolve env lid.Location.txt) with
      | last :: _ -> List.assoc_opt last table
      | [] -> None)
  | _ -> None

let remove_one c held =
  let rec go = function
    | [] -> []
    | x :: rest -> if x = c then rest else x :: go rest
  in
  go held

(* Collect the acquisition/call facts of one definition body.  [walk]
   threads the held-context through sequencing positions and returns the
   context as it stands after the expression; branch-local acquires are
   deliberately not propagated past their branch (under-approximation). *)
let collect_def env cur_module d body =
  let note_acq cls loc held isolated =
    d.acqs <- { cls; loc; isolated; held_at_acq = held } :: d.acqs
  in
  let note_call callee call_loc held isolated =
    d.calls <- { callee; call_loc; held_at_call = held; call_isolated = isolated } :: d.calls
  in
  let rec walk ~iso held e =
    match e.pexp_desc with
    | Pexp_apply (fn0, args0) -> begin
        let fn, args = normalize_apply fn0 args0 in
        let head = Lint_ast.apply_head fn in
        if is_lockdep env fn then begin
          match (head, cls_arg args) with
          | Some "acquire", Some c ->
              note_acq c e.pexp_loc held iso;
              c :: held
          | Some "note", Some c ->
              note_acq c e.pexp_loc held iso;
              held
          | Some "release", Some c -> remove_one c held
          | Some "with_held", Some c ->
              note_acq c e.pexp_loc held iso;
              List.iter (fun (_, a) -> walk_arg ~iso (c :: held) a) args;
              held
          | Some "isolated", _ ->
              (* A fresh node boundary: the lambda runs under no inherited
                 locks, and nothing inside propagates to callers. *)
              List.iter (fun (_, a) -> walk_arg ~iso:true [] a) args;
              held
          | _ ->
              List.iter (fun (_, a) -> ignore (walk ~iso held a)) args;
              held
        end
        else begin
          match head_in bracket_heads env fn with
          | Some c ->
              note_acq c e.pexp_loc held iso;
              List.iter (fun (_, a) -> walk_arg ~iso (c :: held) a) args;
              held
          | None -> (
              match head_in bare_heads env fn with
              | Some c ->
                  let held = List.fold_left (fun h (_, a) -> walk ~iso h a) held args in
                  note_acq c e.pexp_loc held iso;
                  c :: held
              | None -> (
                  match head_in release_heads env fn with
                  | Some c ->
                      List.iter (fun (_, a) -> ignore (walk ~iso held a)) args;
                      remove_one c held
                  | None ->
                      (match fn.pexp_desc with
                      | Pexp_ident lid ->
                          let key =
                            match List.rev (Lint_ast.resolve env lid.Location.txt) with
                            | name :: qual :: _ -> Some (qual, name)
                            | [ name ] -> Some (cur_module, name)
                            | [] -> None
                          in
                          Option.iter (fun k -> note_call k e.pexp_loc held iso) key
                      | _ -> ());
                      List.fold_left (fun h (_, a) -> walk ~iso h a) held args))
        end
      end
    | Pexp_sequence (a, b) ->
        let held = walk ~iso held a in
        walk ~iso held b
    | Pexp_let (_, vbs, body) ->
        let held = List.fold_left (fun h vb -> walk ~iso h vb.pvb_expr) held vbs in
        walk ~iso held body
    | Pexp_match (scrut, cases) ->
        let held = walk ~iso held scrut in
        List.iter
          (fun c ->
            Option.iter (fun g -> ignore (walk ~iso held g)) c.pc_guard;
            ignore (walk ~iso held c.pc_rhs))
          cases;
        held
    | Pexp_try (body, cases) ->
        ignore (walk ~iso held body);
        List.iter (fun c -> ignore (walk ~iso held c.pc_rhs)) cases;
        held
    | Pexp_ifthenelse (cond, t, else_) ->
        let held = walk ~iso held cond in
        ignore (walk ~iso held t);
        Option.iter (fun e2 -> ignore (walk ~iso held e2)) else_;
        held
    | Pexp_fun (_, _, _, body) ->
        ignore (walk ~iso held body);
        held
    | Pexp_function cases ->
        List.iter (fun c -> ignore (walk ~iso held c.pc_rhs)) cases;
        held
    | Pexp_constraint (e1, _) | Pexp_open (_, e1) | Pexp_letmodule (_, _, e1)
    | Pexp_newtype (_, e1) ->
        walk ~iso held e1
    | _ ->
        Lint_ast.iter_child_exprs (fun child -> ignore (walk ~iso held child)) e;
        held
  (* A lambda argument to a bracket runs under the bracket's class; any
     other expression argument is evaluated in the current context. *)
  and walk_arg ~iso held a =
    match a.pexp_desc with
    | Pexp_fun (_, _, _, body) -> ignore (walk ~iso held body)
    | Pexp_function cases -> List.iter (fun c -> ignore (walk ~iso held c.pc_rhs)) cases
    | _ -> ignore (walk ~iso held a)
  in
  ignore (walk ~iso:false [] body)

(* Peel the parameters off a definition to reach its body. *)
let rec peel_params e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> peel_params body
  | Pexp_newtype (_, body) -> peel_params body
  | Pexp_constraint (body, _) -> peel_params body
  | _ -> e

(* Every named top-level definition in the unit (descending into plain
   sub-modules: their defs are keyed under the file's module, which is how
   call sites qualify them from outside). *)
let defs_of_unit ~rel_path ~env str =
  let cur_module = module_of_path rel_path in
  let out = ref [] in
  let rec items str =
    List.iter
      (fun si ->
        match si.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                let name =
                  match vb.pvb_pat.ppat_desc with
                  | Ppat_var v -> v.Location.txt
                  | _ -> "_"
                in
                let d =
                  {
                    key = (cur_module, name);
                    label = cur_module ^ "." ^ name;
                    rel_path;
                    acqs = [];
                    calls = [];
                  }
                in
                collect_def env cur_module d (peel_params vb.pvb_expr);
                out := d :: !out)
              vbs
        | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } -> items s
        | _ -> ())
      str
  in
  items str;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Interprocedural closure and reporting.                               *)

type witness = { w_cls : cls; chain : string }

let check units =
  let defs =
    List.concat_map (fun (rel_path, str, env) -> defs_of_unit ~rel_path ~env str) units
  in
  let by_key = Hashtbl.create 256 in
  List.iter (fun d -> Hashtbl.add by_key d.key d) defs;
  (* may_acquire: def key -> class -> witness chain (first discovered).
     Acquires and calls under [Lockdep.isolated] never propagate — the
     runtime recorder resets its held-stack at the same boundary. *)
  let ma : (string * string, witness list) Hashtbl.t = Hashtbl.create 256 in
  let get k = Option.value ~default:[] (Hashtbl.find_opt ma k) in
  let add k w =
    let cur = get k in
    if List.exists (fun x -> x.w_cls = w.w_cls) cur then false
    else begin
      Hashtbl.replace ma k (w :: cur);
      true
    end
  in
  List.iter
    (fun d ->
      List.iter
        (fun (a : acq) ->
          if not a.isolated then
            ignore (add d.key { w_cls = a.cls; chain = d.label }))
        d.acqs)
    defs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun d ->
        List.iter
          (fun (c : call) ->
            if not c.call_isolated then
              List.iter
                (fun callee ->
                  List.iter
                    (fun (w : witness) ->
                      if add d.key { w with chain = d.label ^ " -> " ^ w.chain }
                      then changed := true)
                    (get callee.key))
                (Hashtbl.find_all by_key c.callee))
          d.calls)
      defs
  done;
  (* Report: every acquisition (direct or through a call) made while a
     higher-ranked class is held. *)
  let out = ref [] in
  let report ~rel_path loc ~held ~acquired ~how =
    List.iter
      (fun h ->
        if h <> acquired && rank h > rank acquired then
          out :=
            ( rel_path,
              diag loc
                "%s acquired while %s is held — reverses the canonical lock \
                 order %s%s"
                (cls_name acquired) (cls_name h) canonical how )
            :: !out)
      (List.sort_uniq compare held)
  in
  List.iter
    (fun d ->
      (* Direct edges: the walk threaded earlier acquires into the held
         context of later sites. *)
      List.iter
        (fun (a : acq) ->
          report ~rel_path:d.rel_path a.loc ~held:a.held_at_acq ~acquired:a.cls ~how:"")
        (List.rev d.acqs);
      (* Interprocedural edges: classes the callee may transitively
         acquire, against the context held at the call site. *)
      List.iter
        (fun (c : call) ->
          if c.held_at_call <> [] then
            List.iter
              (fun callee ->
                List.iter
                  (fun (w : witness) ->
                    report ~rel_path:d.rel_path c.call_loc ~held:c.held_at_call
                      ~acquired:w.w_cls
                      ~how:(Printf.sprintf " (via %s -> %s)" d.label w.chain))
                  (get callee.key))
              (Hashtbl.find_all by_key c.callee))
        (List.rev d.calls))
    defs;
  List.rev !out
