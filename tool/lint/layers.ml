(* The allowed-edges table behind rule L1 — DESIGN.md's architecture
   diagram, executable.

   The storage stack exports a two-module facade: [Pager] (pages, stats,
   files) and [Heap_file]/[Btree] above it.  Everything underneath —
   [Disk], the raw [Page] layout, the [Buffer_pool] — is an internal that
   upper layers must not see, because the durability and corruption
   machinery (WAL sealing, checksums, quarantine, pin accounting) lives in
   the facade's contracts.  Likewise the WAL is driven only by the layers
   that own durability decisions.

   Exceptions to this table are not edited here: they get an explicit entry
   in tool/lint/lint.toml (or a [@lint.allow "L1"] attribute) with a
   comment, so every sanctioned back-door is enumerated in one place. *)

type guard = {
  library : string;  (* wrapping library module, e.g. "Fieldrep_storage" *)
  name : string;  (* guarded submodule, e.g. "Disk" *)
  allowed_dirs : string list;  (* repo-relative directory prefixes *)
  why : string;
}

let guards =
  [
    {
      library = "Fieldrep_storage";
      name = "Disk";
      allowed_dirs = [ "lib/storage" ];
      why = "raw disk I/O bypasses checksums, stats and the buffer pool";
    };
    {
      library = "Fieldrep_storage";
      name = "Backend";
      allowed_dirs = [ "lib/storage" ];
      why =
        "page-store backends live under Disk; callers pick one through \
         the re-exported Pager.backend / Db.backend type";
    };
    {
      library = "Fieldrep_storage";
      name = "Page";
      allowed_dirs = [ "lib/storage"; "lib/wal" ];
      why = "slot layout is private to the heap file and WAL framing";
    };
    {
      library = "Fieldrep_storage";
      name = "Buffer_pool";
      allowed_dirs = [ "lib/storage"; "lib/wal" ];
      why = "pin accounting is owned by the Pager facade";
    };
    {
      library = "Fieldrep_wal";
      name = "Wal";
      allowed_dirs =
        [ "lib/wal"; "lib/core"; "lib/scrub"; "lib/maint"; "lib/repl" ];
      why = "only durability owners may append/sync the log";
    };
    {
      library = "Fieldrep_wal";
      name = "Recovery";
      allowed_dirs = [ "lib/wal"; "lib/core" ];
      why = "replay is driven by Db.recover only";
    };
  ]

(* (directory prefix, library it must not reference, why).  The replication
   engine calls into no transaction code and vice versa: Db mediates, so
   that lock acquisition order stays in one file. *)
let forbidden_edges =
  [
    ( "lib/txn",
      "Fieldrep_replication",
      "no txn -> replication back-edge; Db mediates between the two" );
    ( "lib/txn",
      "Fieldrep_repl",
      "no txn -> shipping back-edge; commit durability flows through \
       Wal.sync's tap, never by txn code calling the shipping layer" );
    ( "lib/maint",
      "Fieldrep_repl",
      "maintenance jobs never talk to the shipping layer; their WAL \
       records reach replicas through the ordinary log stream" );
    ( "lib/maint",
      "Fieldrep_replication",
      "maint is engine-agnostic: per-source operations arrive as \
       closures from Db, which owns the engine entry points" );
  ]
